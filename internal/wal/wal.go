// Package wal is the durability layer of the serving subsystem: a
// per-tenant write-ahead log of raw ingest batches in size-rotated,
// CRC-framed segment files, plus periodic snapshots (any codec — the
// server plugs in the detect checkpoint encoder). Recovery loads the
// latest snapshot and replays the segment tail; because the detector is
// deterministic, replay reproduces the pre-crash state bit-identically.
// Compaction deletes segments wholly covered by the latest snapshot.
//
// On-disk layout of one log directory:
//
//	seg-00000000000000000001.wal    records 1..k (first seq in the name)
//	seg-00000000000000000042.wal    records 42.. (active, appended)
//	snap-00000000000000000041.snap  state after applying records 1..41
//
// Record framing: 4-byte big-endian payload length, 4-byte CRC-32
// (Castagnoli) of the payload, payload. The payload's first byte is the
// record kind — 'B' (ingest batch, followed by the JSON message array)
// or 'F' (stream flush, no body; flushes mutate the detector and must
// replay in order with batches). A torn tail — short frame or CRC
// mismatch at the end of the newest segment, the signature of a crash
// mid-append — is truncated away on Open; the same damage in an older
// (rotated, therefore once-complete) segment is reported as corruption
// instead.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/stream"
	"repro/internal/vfs"
)

const (
	segPrefix  = "seg-"
	segExt     = ".wal"
	snapPrefix = "snap-"
	snapExt    = ".snap"
	frameHdr   = 8 // length + CRC
	// Record kinds (first payload byte).
	recBatch = 'B'
	recFlush = 'F'
	// maxRecordBytes bounds one framed payload (a single ingest batch);
	// it exists so a corrupt length field cannot drive a huge allocation.
	maxRecordBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tune one Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (checked after each append). Zero selects 4 MiB.
	SegmentBytes int64
	// SyncEvery fsyncs the active segment after every N appends; 0 never
	// fsyncs explicitly (the OS page cache still survives kill -9; only
	// power loss can lose the unsynced tail). 1 is fully synchronous.
	// Ignored when GroupCommit is set (every group flush fsyncs).
	SyncEvery int
	// GroupCommit, when non-nil, switches the log to group-committed
	// appends: Append buffers the framed record in memory and returns
	// immediately; the shared committer goroutine flushes every dirty
	// log's buffer with one write and one fsync per interval, and
	// Commit(seq) blocks until the record is durable. Callers that ack
	// after Commit keep the exact durability contract of synchronous
	// appends while all concurrent appenders — across every tenant
	// sharing the committer — split the fsync cost.
	GroupCommit *GroupCommitter
	// OnFlush, when non-nil, is called with the wall time of each
	// successful write+fsync of pending group-commit records, from the
	// flushing goroutine with the log's lock held — it must be fast and
	// must not call back into the log. Serving layers hook it to feed
	// fsync-latency histograms.
	OnFlush func(time.Duration)
	// FS overrides the filesystem behind every file operation — the
	// fault-injection seam for tests. Nil selects the real one.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	o.FS = vfs.Default(o.FS)
	return o
}

// Log is one tenant's write-ahead log. Safe for concurrent use: the
// server appends from its ingest path while the tenant worker snapshots
// and reads metrics.
type Log struct {
	dir string
	opt Options
	fs  vfs.FS
	gc  *GroupCommitter // nil = synchronous appends

	mu       sync.Mutex
	f        vfs.File // active segment
	segStart uint64   // first record seq of the active segment
	size     int64    // bytes written to the active segment
	seq      uint64   // last appended record seq (0 = empty log)
	snapSeq  uint64   // seq of the latest snapshot
	hasSnap  bool     // a snapshot exists (snapSeq 0 is a valid position)
	failed   error    // set when the active segment may hold garbage
	unsynced int      // appends since the last fsync
	segCount int      // on-disk segment files (avoids ReadDir per metric read)

	// encBuf is the pooled record-encoding buffer: one frame (header +
	// kind + JSON batch) is built here per append, then written with a
	// single Write (or copied to pend under group commit).
	encBuf []byte
	// Group-commit state: pend accumulates framed records not yet
	// written to the segment; committed is the seq of the last record
	// durably flushed (== seq in synchronous mode); commitCh broadcasts
	// each flush to Commit waiters.
	pend      []byte
	committed uint64
	commitCh  chan struct{}
	// waiters counts goroutines blocked in Commit. Reopen refuses to
	// run until they drain: a waiter woken by fail-stop must observe
	// l.failed before the reopen clears it, or a fresh record reusing
	// its seq could release it spuriously — acking a batch whose log
	// record now holds different data.
	waiters int

	// Replay scratch (guarded by mu like everything else): the frame
	// payload buffer and decoded batch slice are reused across records,
	// which is why Replay's callback must not retain its arguments.
	scanBuf    []byte
	replayMsgs []stream.Message
}

// Open opens (creating if needed) the log directory, truncates any torn
// tail left by a crash, and positions appends after the last intact
// record.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, fs: opt.FS, gc: opt.GroupCommit}
	// Sweep temp files a crash mid-snapshot left behind — the defer that
	// would have removed them never ran, and nothing else ever would.
	if orphans, err := l.fs.Glob(filepath.Join(dir, "snap-tmp-*")); err == nil {
		for _, o := range orphans {
			l.fs.Remove(o) //nolint:errcheck // best effort
		}
	}
	segs, snaps, err := l.scanDir()
	if err != nil {
		return nil, err
	}
	if len(snaps) > 0 {
		l.snapSeq = snaps[len(snaps)-1]
		l.hasSnap = true
	}
	l.segCount = len(segs)
	l.seq = l.snapSeq
	if len(segs) > 0 {
		// Count records per segment; truncate a torn tail on the newest.
		for i, start := range segs {
			last, validBytes, err := l.scanSegment(start, nil)
			if err != nil {
				if i != len(segs)-1 {
					return nil, fmt.Errorf("wal: segment %s: %w", l.segPath(start), err)
				}
				if terr := l.fs.Truncate(l.segPath(start), validBytes); terr != nil {
					return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", l.segPath(start), terr)
				}
				last = start - 1
				if validBytes > 0 {
					last, _, err = l.scanSegment(start, nil)
					if err != nil {
						return nil, fmt.Errorf("wal: segment %s after truncation: %w", l.segPath(start), err)
					}
				}
			}
			if last > l.seq {
				l.seq = last
			}
		}
		active := segs[len(segs)-1]
		f, err := l.fs.OpenFile(l.segPath(active), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open active segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: stat active segment: %w", err)
		}
		l.f, l.segStart, l.size = f, active, st.Size()
	}
	l.committed = l.seq
	return l, nil
}

// Append frames and writes one ingest batch, returning its sequence
// number (1-based, monotonic). In synchronous mode (no group
// committer) the record is on disk (page cache at least; fsynced per
// Options.SyncEvery) before Append returns, so a batch acknowledged to
// a client is never lost to a process kill. Under group commit the
// record is only buffered — callers must Commit(seq) before acking.
func (l *Log) Append(msgs []stream.Message) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendRecordLocked(recBatch, msgs)
}

// AppendFlush logs a stream-flush control record. A flush forces the
// detector's buffered partial quantum through, mutating state exactly
// like a batch does — so it must be in the log, in order, or replay
// would cut subsequent quanta at different boundaries than the live
// run did.
func (l *Log) AppendFlush() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendRecordLocked(recFlush, nil)
}

// appendRecordLocked encodes one frame into the pooled buffer and either
// writes it (synchronous mode) or parks it on the pending group-commit
// buffer.
func (l *Log) appendRecordLocked(kind byte, msgs []stream.Message) (uint64, error) {
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed: %w", l.failed)
	}
	buf := append(l.encBuf[:0], 0, 0, 0, 0, 0, 0, 0, 0, kind)
	if kind == recBatch {
		buf = appendMessagesJSON(buf, msgs)
	}
	payload := buf[frameHdr:]
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	l.encBuf = buf

	if l.gc != nil {
		wasEmpty := len(l.pend) == 0
		l.pend = append(l.pend, buf...)
		l.seq++
		if wasEmpty {
			if stopped := l.gc.noteDirty(l); stopped {
				// The committer is gone (shutdown path); degrade to a
				// synchronous flush so no record can be stranded.
				if err := l.flushLocked(); err != nil {
					return 0, err
				}
			}
		}
		return l.seq, nil
	}

	if l.f == nil {
		if err := l.rotate(l.seq + 1); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		l.rollback()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq++
	l.size += int64(len(buf))
	l.unsynced++
	if l.opt.SyncEvery > 0 && l.unsynced >= l.opt.SyncEvery {
		if err := l.f.Sync(); err != nil {
			// The record is written but its durability is in doubt, and
			// the caller will report failure — roll it back so a client
			// retry cannot leave two copies for replay to double-apply.
			l.seq--
			l.size -= int64(len(buf))
			l.unsynced--
			l.rollback()
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		l.unsynced = 0
	}
	l.committed = l.seq
	if l.size >= l.opt.SegmentBytes {
		// The record is committed; a failed rotation must not fail the
		// append (the caller would retry and duplicate it). Rotation is
		// simply reattempted on the next append.
		l.rotate(l.seq + 1) //nolint:errcheck // deferred to next append
	}
	return l.seq, nil
}

// Commit blocks until record seq is durable (flushed and fsynced by the
// group committer) or the log has failed. In synchronous mode it
// returns immediately: Append already provided the durability.
func (l *Log) Commit(seq uint64) error {
	if l.gc == nil {
		return nil
	}
	l.mu.Lock()
	// seq > l.seq means a supervised Reopen discarded the record after
	// its append (it was pending when the log fail-stopped): it will
	// never become durable, and waiting would deadlock — or worse,
	// release spuriously once a fresh record reuses the seq, acking a
	// batch whose log record holds different data.
	for l.committed < seq && l.failed == nil && seq <= l.seq {
		if l.commitCh == nil {
			l.commitCh = make(chan struct{})
		}
		ch := l.commitCh
		l.waiters++
		l.mu.Unlock()
		<-ch
		l.mu.Lock()
		l.waiters--
	}
	var err error
	if l.committed < seq {
		if l.failed != nil {
			err = fmt.Errorf("wal: commit: %w", l.failed)
		} else {
			err = fmt.Errorf("wal: commit: record %d discarded by reopen", seq)
		}
	}
	l.mu.Unlock()
	return err
}

// flushCommit is the group committer's entry point: flush this log's
// pending records. Errors are not returned — they fail-stop the log
// and are surfaced to every Commit waiter.
func (l *Log) flushCommit() {
	l.mu.Lock()
	l.flushLocked() //nolint:errcheck // surfaced via l.failed to Commit waiters
	l.mu.Unlock()
}

// flushLocked writes the pending buffer with one Write, fsyncs, and
// wakes Commit waiters. A write or fsync failure fail-stops the log:
// the pending records were never acknowledged (their Commit calls
// return the error), and accepting further appends after a partial
// flush could tear the segment.
func (l *Log) flushLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if len(l.pend) == 0 {
		return nil
	}
	var flushStart time.Time
	if l.opt.OnFlush != nil {
		flushStart = time.Now() //repro:wallclock-exempt flush-latency callback; durability telemetry, not record content
	}
	if l.f == nil {
		if err := l.rotate(l.committed + 1); err != nil {
			l.fail(err)
			return err
		}
	}
	if _, err := l.f.Write(l.pend); err != nil {
		l.rollback() // drop any partially written frame
		l.fail(fmt.Errorf("wal: group flush: %w", err))
		return l.failed
	}
	if err := l.f.Sync(); err != nil {
		// The frames are in the file but were never acknowledged (their
		// Commit waiters get this error). Truncate them away — exactly
		// like the synchronous path's fsync rollback — or a restart
		// would replay records whose clients were told to retry,
		// double-applying on retry. l.size still names the pre-flush
		// offset here.
		l.rollback()
		l.fail(fmt.Errorf("wal: group fsync: %w", err))
		return l.failed
	}
	if l.opt.OnFlush != nil {
		l.opt.OnFlush(time.Since(flushStart)) //repro:wallclock-exempt flush-latency callback; durability telemetry, not record content
	}
	l.size += int64(len(l.pend))
	l.pend = l.pend[:0]
	l.committed = l.seq
	l.unsynced = 0
	if l.commitCh != nil {
		close(l.commitCh)
		l.commitCh = nil
	}
	if l.size >= l.opt.SegmentBytes {
		l.rotate(l.seq + 1) //nolint:errcheck // reattempted on next flush
	}
	return nil
}

// fail puts the log into fail-stop and wakes Commit waiters so they
// observe the error instead of blocking forever.
func (l *Log) fail(err error) {
	if l.failed == nil {
		l.failed = err
	}
	if l.commitCh != nil {
		close(l.commitCh)
		l.commitCh = nil
	}
}

// rollback discards a partially-written frame after a failed append by
// truncating the active segment to the last good offset. Without it a
// later successful append would land after torn bytes mid-segment, and
// recovery would either refuse the segment or truncate away records
// that were already acknowledged. If even the truncate fails the log
// goes fail-stop: better to refuse appends than to ack unrecoverable
// ones.
func (l *Log) rollback() {
	if err := l.f.Truncate(l.size); err != nil {
		l.failed = fmt.Errorf("truncate after failed append: %w", err)
	}
}

// rotate closes the active segment (fsyncing it — a rotated segment is
// immutable and must be complete) and starts a new one whose name is
// the seq of the first record it will hold.
func (l *Log) rotate(firstSeq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync on rotate: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		l.f = nil
	}
	// O_APPEND matters beyond convention: rollback() truncates after a
	// failed write, and only append-mode writes land at the new EOF
	// rather than at the stale positional offset (which would leave a
	// zero-filled hole that parses as a phantom record).
	f, err := l.fs.OpenFile(l.segPath(firstSeq), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	l.f, l.segStart, l.size, l.unsynced = f, firstSeq, 0, 0
	l.segCount++
	return nil
}

// Snapshot atomically persists the state after applying records 1..seq
// (write is the caller's codec — the server passes detect's encoder),
// then deletes segments and older snapshots the new snapshot covers.
// The slow part — encoding and fsyncing the temp file — runs outside
// the log mutex so concurrent Appends (the ingest ack path) never
// stall behind snapshot IO; only the rename, bookkeeping and
// compaction take the lock. Concurrent Snapshot calls are the caller's
// responsibility to avoid (the server snapshots from one goroutine per
// tenant).
func (l *Log) Snapshot(seq uint64, write func(io.Writer) error) error {
	l.mu.Lock()
	if l.hasSnap && seq < l.snapSeq {
		defer l.mu.Unlock()
		return fmt.Errorf("wal: snapshot seq %d behind existing snapshot %d", seq, l.snapSeq)
	}
	// Flush group-committed records first: the snapshot position names
	// records 1..seq, which must not be outlived by an in-memory buffer
	// a crash could lose while the snapshot survives.
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	tmp, err := l.fs.CreateTemp(l.dir, "snap-tmp-*")
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer l.fs.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hasSnap && seq < l.snapSeq {
		return fmt.Errorf("wal: snapshot seq %d behind existing snapshot %d", seq, l.snapSeq)
	}
	if err := l.fs.Rename(tmp.Name(), l.snapPath(seq)); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	l.syncDir()
	prev, hadPrev := l.snapSeq, l.hasSnap
	l.snapSeq, l.hasSnap = seq, true
	if hadPrev && prev != seq {
		l.fs.Remove(l.snapPath(prev)) //nolint:errcheck // superseded; best effort
	}
	return l.compact()
}

// compact deletes non-active segments whose every record is ≤ snapSeq.
func (l *Log) compact() error {
	segs, _, err := l.scanDir()
	if err != nil {
		return err
	}
	for i, start := range segs {
		if start == l.segStart && l.f != nil {
			continue // never delete the active segment
		}
		// The segment holds records start..(next segment's start - 1);
		// for the last listed segment that is start..l.seq.
		last := l.seq
		if i+1 < len(segs) {
			last = segs[i+1] - 1
		}
		if last <= l.snapSeq {
			if err := l.fs.Remove(l.segPath(start)); err != nil {
				return fmt.Errorf("wal: compact: %w", err)
			}
			l.segCount--
		}
	}
	l.syncDir()
	return nil
}

// LatestSnapshot opens the newest snapshot for reading. Returns
// (nil, 0, nil) when the log has none. A snapshot at position 0 (state
// seeded before any record — e.g. basing a fresh WAL on a restored
// checkpoint) is a real snapshot, not "none".
func (l *Log) LatestSnapshot() (io.ReadCloser, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.hasSnap {
		return nil, 0, nil
	}
	f, err := l.fs.Open(l.snapPath(l.snapSeq))
	if err != nil {
		return nil, 0, fmt.Errorf("wal: open snapshot: %w", err)
	}
	return f, l.snapSeq, nil
}

// Replay streams every record with sequence number > after, in order,
// to fn: an ingest batch (flush false) or a stream-flush marker (flush
// true, msgs nil). Used with after = latest snapshot seq to rebuild
// the tail. The msgs slice (and the payloads behind it) is reused
// across records — fn must finish with it before returning, copying if
// it needs to retain.
func (l *Log) Replay(after uint64, fn func(seq uint64, msgs []stream.Message, flush bool) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err // group-committed records would be invisible to the scan
	}
	segs, _, err := l.scanDir()
	if err != nil {
		return err
	}
	for i, start := range segs {
		last := l.seq
		if i+1 < len(segs) {
			last = segs[i+1] - 1
		}
		if last <= after {
			continue
		}
		if _, _, err := l.scanSegment(start, func(seq uint64, payload []byte) error {
			if seq <= after {
				return nil
			}
			if len(payload) == 0 {
				return fmt.Errorf("wal: record %d has no kind byte", seq)
			}
			switch payload[0] {
			case recFlush:
				return fn(seq, nil, true)
			case recBatch:
				// Decode into the reused batch slice: json.Unmarshal
				// reuses the backing array capacity, so steady-state
				// replay allocates only for message texts and growth.
				l.replayMsgs = l.replayMsgs[:0]
				if err := json.Unmarshal(payload[1:], &l.replayMsgs); err != nil {
					return fmt.Errorf("wal: decode record %d: %w", seq, err)
				}
				return fn(seq, l.replayMsgs, false)
			default:
				return fmt.Errorf("wal: record %d has unknown kind %q", seq, payload[0])
			}
		}); err != nil {
			return fmt.Errorf("wal: segment %s: %w", l.segPath(start), err)
		}
	}
	return nil
}

// LastSeq returns the sequence number of the newest appended record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// CommittedSeq returns the sequence number of the newest durably
// committed record — the acked prefix Reopen recovers to.
func (l *Log) CommittedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// Failed returns the fail-stop error, or nil while the log is healthy.
// A failed log refuses appends until Reopen succeeds.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Reopen recovers a fail-stopped log in process, without losing any
// acknowledged record: the poisoned active segment — which may hold
// torn bytes or frames whose fsync never completed — is truncated back
// to the acked prefix (records ≤ committed; everything past it was
// reported failed to its callers, so a client retry must not find it on
// disk), sealed, and appends resume in a fresh segment. Pending
// group-commit buffers are discarded for the same reason: their Commit
// waiters already saw the failure. On success the log accepts appends
// again; on error it stays fail-stopped and Reopen can be retried —
// exactly what the serving layer's degradation supervisor does on a
// probe cadence. A healthy log is a no-op.
func (l *Log) Reopen() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed == nil {
		return nil
	}
	if l.waiters > 0 {
		// Commit waiters woken by the fail-stop have not re-acquired the
		// mutex yet. They must observe l.failed — clearing it now could
		// let a later append reuse their seq and release them spuriously.
		// They drain in microseconds; the supervisor retries next probe.
		return fmt.Errorf("wal: reopen: %d commit waiters still draining", l.waiters)
	}
	l.pend = l.pend[:0]
	if l.f != nil {
		l.f.Close() //nolint:errcheck // handle may already be poisoned
		l.f = nil
	}
	segs, _, err := l.scanDir()
	if err != nil {
		return err
	}
	l.seq = l.committed
	if len(segs) == 0 || segs[len(segs)-1] > l.committed+1 {
		// No segment on disk, or the newest segment holds no acked
		// record at all (the failure was its very first write): nothing
		// to truncate that an O_EXCL re-create won't replace. Drop a
		// fully-unacked newest segment so the name is free again.
		if len(segs) > 0 && segs[len(segs)-1] > l.committed+1 {
			if err := l.fs.Remove(l.segPath(segs[len(segs)-1])); err != nil {
				return fmt.Errorf("wal: reopen: drop unacked segment: %w", err)
			}
			l.segCount--
		}
		l.failed = nil
		l.f, l.segStart, l.size, l.unsynced = nil, 0, 0, 0
		return nil
	}
	start := segs[len(segs)-1]
	// Find the byte offset of the acked prefix: intact frames with
	// seq ≤ committed. A torn tail stops the scan, which is fine — the
	// torn bytes are past the prefix by construction (committed frames
	// were written and fsynced whole).
	var keep int64
	if _, _, err := l.scanSegment(start, func(seq uint64, payload []byte) error {
		if seq <= l.committed {
			keep += frameHdr + int64(len(payload))
		}
		return nil
	}); err != nil {
		// A torn tail (or trailing garbage) is exactly the damage being
		// repaired: the truncate below cuts it away. Only a segment that
		// cannot be opened at all aborts — scanSegment surfaces that as
		// an open error with keep still 0, and truncating an unreadable
		// file would guess.
		if keep == 0 && errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("wal: reopen: %w", err)
		}
	}
	if err := l.fs.Truncate(l.segPath(start), keep); err != nil {
		return fmt.Errorf("wal: reopen: truncate to acked prefix: %w", err)
	}
	if start == l.committed+1 && keep == 0 {
		// The poisoned segment held no acked records; it is now empty and
		// already named for the next record — resume appending into it.
		f, err := l.fs.OpenFile(l.segPath(start), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: reopen: %w", err)
		}
		l.f, l.segStart, l.size, l.unsynced = f, start, 0, 0
		l.failed = nil
		return nil
	}
	// Seal the truncated segment — it is complete through committed and
	// must be fsynced before new appends land elsewhere — then start a
	// fresh segment for the next record.
	f, err := l.fs.OpenFile(l.segPath(start), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen: %w", err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("wal: reopen: seal: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: reopen: seal: %w", cerr)
	}
	prevFailed := l.failed
	l.failed = nil
	if err := l.rotate(l.committed + 1); err != nil {
		l.failed = prevFailed
		return err
	}
	return nil
}

// SnapshotSeq returns the sequence number of the latest snapshot.
func (l *Log) SnapshotSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapSeq
}

// SegmentCount returns the number of on-disk segment files, tracked in
// memory — metric reads must not hold the append mutex across a
// directory listing.
func (l *Log) SegmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segCount
}

// Sync flushes any group-committed buffer and fsyncs the active
// segment regardless of SyncEvery.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.f == nil {
		return nil
	}
	l.unsynced = 0
	return l.f.Sync()
}

// Close flushes, fsyncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	if l.f == nil {
		return err
	}
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func (l *Log) segPath(firstSeq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segExt))
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapExt))
}

// syncDir fsyncs the directory so renames/removes survive power loss.
func (l *Log) syncDir() {
	if d, err := l.fs.Open(l.dir); err == nil {
		d.Sync() //nolint:errcheck // best-effort directory fsync
		d.Close()
	}
}

// scanDir lists segment start seqs and snapshot seqs, each ascending.
func (l *Log) scanDir() (segs, snaps []uint64, err error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: list %s: %w", l.dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segExt):
			n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segExt), 10, 64)
			if err == nil {
				segs = append(segs, n)
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapExt):
			n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapExt), 10, 64)
			if err == nil {
				snaps = append(snaps, n)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// scanSegment walks one segment's frames. fn (optional) receives each
// record's seq and raw payload. Returns the last record seq present
// (start-1 for an empty segment) and the byte offset up to which frames
// were intact; a torn or corrupt frame yields that offset plus an error,
// so the caller can distinguish "truncate here" from "refuse".
func (l *Log) scanSegment(start uint64, fn func(seq uint64, payload []byte) error) (last uint64, validBytes int64, err error) {
	f, err := l.fs.Open(l.segPath(start))
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := newByteCounter(f)
	last = start - 1
	var hdr [frameHdr]byte
	for {
		validBytes = r.n
		if _, err := io.ReadFull(r, hdr[:1]); err == io.EOF {
			return last, validBytes, nil
		} else if err != nil {
			return last, validBytes, fmt.Errorf("torn frame header at offset %d", validBytes)
		}
		if _, err := io.ReadFull(r, hdr[1:]); err != nil {
			return last, validBytes, fmt.Errorf("torn frame header at offset %d", validBytes)
		}
		size := binary.BigEndian.Uint32(hdr[0:4])
		if size > maxRecordBytes {
			return last, validBytes, fmt.Errorf("implausible record size %d at offset %d", size, validBytes)
		}
		// Reuse the frame buffer across records (and scans); fn must not
		// retain the payload.
		if cap(l.scanBuf) < int(size) {
			l.scanBuf = make([]byte, size)
		}
		payload := l.scanBuf[:size]
		if _, err := io.ReadFull(r, payload); err != nil {
			return last, validBytes, fmt.Errorf("torn record at offset %d", validBytes)
		}
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(hdr[4:8]) {
			return last, validBytes, fmt.Errorf("CRC mismatch at offset %d", validBytes)
		}
		last++
		if fn != nil {
			if err := fn(last, payload); err != nil {
				return last, r.n, err
			}
		}
	}
}

// byteCounter counts bytes consumed from an io.Reader.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}
