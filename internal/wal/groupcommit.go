package wal

import (
	"sync"
	"time"
)

// GroupCommitter is the cross-tenant group-commit engine: one goroutine
// that, every interval, flushes the pending buffer of every log that
// appended since the last pass — one buffered write and one fsync per
// dirty log per interval, regardless of how many appends (from how many
// tenants) accumulated. Logs opt in via Options.GroupCommit; appenders
// call Log.Commit(seq) to wait for durability before acknowledging.
//
// The interval bounds acknowledgment latency (an append waits at most
// roughly one interval plus the flush itself); the win is that N
// concurrent appends across all tenants cost O(dirty logs) fsyncs
// instead of N.
type GroupCommitter struct {
	interval time.Duration

	mu      sync.Mutex
	dirty   []*Log
	stopped bool

	wake  chan struct{}
	stopc chan struct{}
	done  chan struct{}
}

// NewGroupCommitter starts a committer flushing dirty logs every
// interval (≤ 0 selects 2ms). Stop it when the logs it serves are
// closed.
func NewGroupCommitter(interval time.Duration) *GroupCommitter {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	g := &GroupCommitter{
		interval: interval,
		wake:     make(chan struct{}, 1),
		stopc:    make(chan struct{}),
		done:     make(chan struct{}),
	}
	go g.run()
	return g
}

// Interval reports the flush interval (for metrics/logging).
func (g *GroupCommitter) Interval() time.Duration { return g.interval }

// noteDirty registers l for the next flush pass. Called by the log with
// its own mutex held, exactly once per empty→non-empty transition of
// its pending buffer. Returns true when the committer has stopped — the
// caller must then flush synchronously itself (it holds the lock the
// committer would need, so it cannot be called back).
func (g *GroupCommitter) noteDirty(l *Log) (stopped bool) {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return true
	}
	g.dirty = append(g.dirty, l)
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	return false
}

// run is the committer goroutine: wait for the first dirty log, let the
// coalescing window pass, flush everything dirty, repeat. One timer is
// reused across cycles (Go 1.23+ timer semantics make Reset safe after
// a bare Stop) — time.After would allocate a timer per flush, hundreds
// per second at millisecond intervals.
func (g *GroupCommitter) run() {
	defer close(g.done)
	timer := time.NewTimer(g.interval)
	timer.Stop()
	defer timer.Stop()
	for {
		select {
		case <-g.stopc:
			g.flushAll()
			return
		case <-g.wake:
		}
		timer.Reset(g.interval)
		select {
		case <-g.stopc:
			g.flushAll()
			return
		case <-timer.C:
		}
		g.flushAll()
	}
}

// flushAll flushes every log registered dirty since the last pass.
// Different logs are different files, so their writes and fsyncs
// overlap in parallel — the coalescing (one fsync per log per pass, no
// matter how many appends) is what group commit is about, not
// serialising the disks behind one another.
func (g *GroupCommitter) flushAll() {
	g.mu.Lock()
	dirty := g.dirty
	g.dirty = nil
	g.mu.Unlock()
	if len(dirty) == 1 {
		dirty[0].flushCommit()
		return
	}
	var wg sync.WaitGroup
	for _, l := range dirty {
		wg.Add(1)
		go func(l *Log) {
			defer wg.Done()
			l.flushCommit()
		}(l)
	}
	wg.Wait()
}

// Stop flushes outstanding work and terminates the committer. After
// Stop, appends on attached logs degrade to synchronous flushes — no
// record can be stranded — but the right order is: close the logs,
// then Stop. Safe to call more than once; nil-safe.
func (g *GroupCommitter) Stop() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		<-g.done
		return
	}
	g.stopped = true
	g.mu.Unlock()
	close(g.stopc)
	<-g.done
}
