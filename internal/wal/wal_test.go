package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stream"
)

func batch(seq, n int) []stream.Message {
	out := make([]stream.Message, n)
	for i := range out {
		out[i] = stream.Message{
			ID:   uint64(seq*1000 + i),
			User: uint64(i),
			Time: int64(seq),
			Text: fmt.Sprintf("batch %d message %d", seq, i),
		}
	}
	return out
}

func collect(t *testing.T, l *Log, after uint64) map[uint64][]stream.Message {
	t.Helper()
	got := map[uint64][]stream.Message{}
	if err := l.Replay(after, func(seq uint64, msgs []stream.Message, flush bool) error {
		if flush {
			t.Fatalf("unexpected flush record at seq %d", seq)
		}
		// Replay reuses the batch slice across records; retain a copy.
		got[seq] = append([]stream.Message(nil), msgs...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestAppendReopenReplay round-trips batches through a close/reopen.
func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]stream.Message{}
	for i := 1; i <= 5; i++ {
		seq, err := l.Append(batch(i, 3))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
		want[seq] = batch(i, 3)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l2.LastSeq())
	}
	if got := collect(t, l2, 0); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %v\nwant %v", got, want)
	}
	// Replay after a mid-point skips the prefix.
	if got := collect(t, l2, 3); len(got) != 2 || got[4] == nil || got[5] == nil {
		t.Fatalf("partial replay = %v", got)
	}
	// Appends continue the sequence.
	if seq, err := l2.Append(batch(6, 1)); err != nil || seq != 6 {
		t.Fatalf("append after reopen: seq = %d, err = %v", seq, err)
	}
}

// TestRotationAndCompaction forces tiny segments, snapshots mid-log, and
// requires covered segments (and the superseded snapshot) to be deleted
// while the tail stays replayable.
func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64}) // every batch rotates
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 8; i++ {
		if _, err := l.Append(batch(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.SegmentCount(); n < 4 {
		t.Fatalf("segments = %d, want several (rotation broken)", n)
	}

	state := []byte("detector state after batch 5")
	if err := l.Snapshot(5, func(w io.Writer) error { _, err := w.Write(state); return err }); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(6, func(w io.Writer) error { _, err := w.Write(append(state, '6')); return err }); err != nil {
		t.Fatal(err)
	}
	if l.SnapshotSeq() != 6 {
		t.Fatalf("SnapshotSeq = %d, want 6", l.SnapshotSeq())
	}
	// Exactly one snapshot file remains.
	snaps, err := filepath.Glob(filepath.Join(dir, snapPrefix+"*"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files = %v (err %v), want one", snaps, err)
	}

	// Recovery sees the latest snapshot and only the uncovered tail.
	l2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	r, seq, err := l2.LatestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("snapshot seq = %d, want 6", seq)
	}
	raw, _ := io.ReadAll(r)
	r.Close()
	if string(raw) != string(state)+"6" {
		t.Fatalf("snapshot content = %q", raw)
	}
	got := collect(t, l2, seq)
	if len(got) != 2 || got[7] == nil || got[8] == nil {
		t.Fatalf("tail replay = %v, want batches 7 and 8", got)
	}
	// No segment holding only records ≤ 6 survives.
	for seg := range got {
		if seg <= 6 {
			t.Fatalf("compaction left covered record %d", seg)
		}
	}
}

// TestTornTailTruncated simulates a crash mid-append: the last frame is
// cut short, reopen truncates it, and the log continues from the last
// intact record.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(batch(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-7); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O // cut into record 3
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", l2.LastSeq())
	}
	if got := collect(t, l2, 0); len(got) != 2 {
		t.Fatalf("replay after torn tail = %v", got)
	}
	// The truncated record's seq is reused by the next append.
	if seq, err := l2.Append(batch(3, 2)); err != nil || seq != 3 {
		t.Fatalf("append after truncation: seq = %d, err = %v", seq, err)
	}
	if got := collect(t, l2, 0); len(got) != 3 {
		t.Fatalf("replay after re-append = %v", got)
	}
}

// TestCorruptRotatedSegmentRefused flips a payload byte in a rotated
// (non-final) segment: that is real corruption, not a torn tail, and
// Open must refuse rather than silently drop records.
func TestCorruptRotatedSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := l.Append(batch(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments = %v, want ≥ 2", segs)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[frameHdr+2] ^= 0xFF                                   // corrupt the first record's payload
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil { //repro:vfs-exempt deliberate out-of-band corruption of on-disk state under test, not storage-layer I/O
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Open on corrupt rotated segment: err = %v, want CRC error", err)
	}
}

// TestFlushRecordsReplayInOrder interleaves batch and flush records and
// requires replay to deliver both kinds in log order — quantum
// boundaries depend on it.
func TestFlushRecordsReplayInOrder(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(batch(1, 2)); err != nil {
		t.Fatal(err)
	}
	if seq, err := l.AppendFlush(); err != nil || seq != 2 {
		t.Fatalf("flush seq = %d, err = %v", seq, err)
	}
	if _, err := l.Append(batch(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var kinds []string
	if err := l2.Replay(0, func(seq uint64, msgs []stream.Message, flush bool) error {
		if flush {
			kinds = append(kinds, "flush")
		} else {
			kinds = append(kinds, fmt.Sprintf("batch%d", len(msgs)))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kinds, []string{"batch2", "flush", "batch2"}) {
		t.Fatalf("replay order = %v", kinds)
	}
}

// TestSnapshotAtSeqZero pins the checkpoint-migration case: a snapshot
// of state seeded before any record (position 0) must survive a reopen
// rather than being confused with "no snapshot".
func TestSnapshotAtSeqZero(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	state := []byte("restored checkpoint state")
	if err := l.Snapshot(0, func(w io.Writer) error { _, err := w.Write(state); return err }); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	r, seq, err := l2.LatestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("snapshot at position 0 invisible after reopen")
	}
	raw, _ := io.ReadAll(r)
	r.Close()
	if seq != 0 || string(raw) != string(state) {
		t.Fatalf("snapshot = seq %d content %q", seq, raw)
	}
}

// TestSyncEvery exercises the fsync cadence path (correctness only; the
// durability claim cannot be asserted in-process).
func TestSyncEvery(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(batch(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if l.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
}

// BenchmarkWALAppend measures framed append throughput at a typical
// ingest batch size (64 messages, ~80 bytes of text each).
func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	msgs := batch(1, 64)
	var bytes int64
	for _, m := range msgs {
		bytes += int64(len(m.Text)) + 32
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(msgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures raw segment replay (decode + CRC) over a
// 512-batch log.
func BenchmarkWALReplay(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	msgs := batch(1, 64)
	for i := 0; i < 512; i++ {
		if _, err := l.Append(msgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := l.Replay(0, func(uint64, []stream.Message, bool) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 512 {
			b.Fatalf("replayed %d", n)
		}
	}
}
