package wal

import (
	"strconv"
	"unicode/utf8"

	"repro/internal/stream"
)

// Hand-rolled JSON encoding of a message batch, byte-identical to
// encoding/json.Marshal([]stream.Message) (differentially tested,
// escaping included) but appending into a caller-owned buffer: the WAL
// append hot path encodes every acknowledged batch, and Marshal's
// output allocation plus reflection walk was most of its cost. Replay
// keeps using encoding/json — the wire format is plain JSON either way.

// appendMessagesJSON appends the json.Marshal encoding of msgs to dst.
func appendMessagesJSON(dst []byte, msgs []stream.Message) []byte {
	if msgs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i := range msgs {
		if i > 0 {
			dst = append(dst, ',')
		}
		m := &msgs[i]
		dst = append(dst, `{"id":`...)
		dst = strconv.AppendUint(dst, m.ID, 10)
		dst = append(dst, `,"user":`...)
		dst = strconv.AppendUint(dst, m.User, 10)
		dst = append(dst, `,"time":`...)
		dst = strconv.AppendInt(dst, m.Time, 10)
		dst = append(dst, `,"text":`...)
		dst = appendJSONString(dst, m.Text)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json
// encodes it with the default HTML escaping: control characters,
// quote/backslash, '<', '>', '&', invalid UTF-8 (→ \ufffd) and the
// JS-hostile U+2028/U+2029 are escaped; everything else is copied.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control bytes and <, >, & get \u00xx.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe marks ASCII bytes that need no escaping under encoding/json's
// default (HTML-escaping) encoder.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = true
	}
	t['"'], t['\\'], t['<'], t['>'], t['&'] = false, false, false, false, false
	return
}()
