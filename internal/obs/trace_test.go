package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceSpansSumToTotal(t *testing.T) {
	tr := StartTrace("query", "demo", "/v1/demo/query?limit=10")
	tr.Step("parse")
	time.Sleep(time.Millisecond)
	tr.Step("plan")
	tr.Annotate("index=keyword")
	tr.Annotate("candidates=3")
	time.Sleep(time.Millisecond)
	tr.Step("scan")
	rec := tr.Finish()

	if rec.Op != "query" || rec.Tenant != "demo" {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(rec.Spans))
	}
	var sum time.Duration
	for _, s := range rec.Spans {
		if s.Dur < 0 {
			t.Fatalf("negative span %+v", s)
		}
		sum += s.Dur
	}
	// Contiguous by construction: the spans partition [Start, Finish].
	if sum != rec.Total {
		t.Fatalf("span sum %v != total %v", sum, rec.Total)
	}
	if rec.Spans[1].Annot != "index=keyword candidates=3" {
		t.Fatalf("annotation = %q", rec.Spans[1].Annot)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *ReqTrace
	tr.Step("x")
	tr.Annotate("y")
	if tr.Finish() != nil {
		t.Fatal("nil trace must finish to nil")
	}
	var ring *SlowRing
	ring.Offer(&TraceRecord{})
	if ring.Snapshot() != nil || ring.Len() != 0 || ring.Cap() != 0 {
		t.Fatal("nil ring must no-op")
	}
}

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(8)
	// Offer 100 records in a scrambled order; the ring must retain
	// exactly the 8 slowest.
	for i := 0; i < 100; i++ {
		total := time.Duration((i*37)%100+1) * time.Millisecond
		r.Offer(&TraceRecord{Op: "q", Total: total})
	}
	recs := r.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("retained %d, want 8", len(recs))
	}
	for i, rec := range recs {
		want := time.Duration(100-i) * time.Millisecond
		if rec.Total != want {
			t.Fatalf("rank %d: total %v, want %v", i, rec.Total, want)
		}
	}
	// A record faster than the floor is rejected on the fast path.
	r.Offer(&TraceRecord{Total: time.Millisecond})
	if got := r.Snapshot()[7].Total; got != 93*time.Millisecond {
		t.Fatalf("floor breached: fastest retained %v", got)
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(16)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Offer(&TraceRecord{
					Op:    fmt.Sprintf("g%d", g),
					Total: time.Duration(g*per+i+1) * time.Microsecond,
				})
			}
		}(g)
	}
	wg.Wait()
	recs := r.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("retained %d, want 16", len(recs))
	}
	// The global 16 slowest are the top of the last goroutine's range.
	for i, rec := range recs {
		want := time.Duration(goroutines*per-i) * time.Microsecond
		if rec.Total != want {
			t.Fatalf("rank %d: total %v, want %v", i, rec.Total, want)
		}
	}
}
