package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one stage of a traced request: a name, the time spent, and
// free-form annotations ("segments=12 scanned=3 ...").
type Span struct {
	Stage string
	Dur   time.Duration
	Annot string
}

// TraceRecord is one finished request trace. Immutable once returned
// by ReqTrace.Finish, so rings and debug endpoints share it freely.
type TraceRecord struct {
	Tenant string
	Op     string // "ingest", "query", "flush", ...
	Detail string // request path + query, or other context
	Start  time.Time
	Total  time.Duration
	Spans  []Span
}

// ReqTrace collects one request's spans, x/net/trace-style but
// allocation-bounded: one struct plus one small span slice per traced
// request, nothing per Step. Spans are contiguous by construction —
// each Step closes the previous span at the instant it opens the next,
// so the span durations sum exactly to Finish's Total. Nil-receiver
// safe throughout, so untraced code paths pass nil and pay one branch.
// Not safe for concurrent use (a trace follows one request).
type ReqTrace struct {
	rec      TraceRecord
	spans    []Span
	mark     time.Time // start of the open span (or the trace start)
	curName  string
	curAnnot string
	open     bool
}

// StartTrace begins a trace. The first Step's span is back-dated to
// the trace start, so setup before it is accounted for.
func StartTrace(op, tenant, detail string) *ReqTrace {
	now := time.Now()
	return &ReqTrace{
		rec:   TraceRecord{Tenant: tenant, Op: op, Detail: detail, Start: now},
		spans: make([]Span, 0, 8),
		mark:  now,
	}
}

// Step closes the current span (if any) and opens a new one named
// stage. Nil-safe.
func (t *ReqTrace) Step(stage string) {
	if t == nil {
		return
	}
	if t.open {
		now := time.Now()
		t.spans = append(t.spans, Span{Stage: t.curName, Dur: now.Sub(t.mark), Annot: t.curAnnot})
		t.mark = now
	}
	// Not open: keep mark at the trace start so the first span covers
	// everything since StartTrace.
	t.open, t.curName, t.curAnnot = true, stage, ""
}

// Annotate attaches free-form detail to the current span (joined with
// a space when called repeatedly). Nil-safe; no-op without an open
// span.
func (t *ReqTrace) Annotate(s string) {
	if t == nil || !t.open || s == "" {
		return
	}
	if t.curAnnot != "" {
		t.curAnnot += " " + s
	} else {
		t.curAnnot = s
	}
}

// Finish closes the trace and returns its immutable record. The span
// durations sum exactly to Total. Nil receiver returns nil.
func (t *ReqTrace) Finish() *TraceRecord {
	if t == nil {
		return nil
	}
	now := time.Now()
	if t.open {
		t.spans = append(t.spans, Span{Stage: t.curName, Dur: now.Sub(t.mark), Annot: t.curAnnot})
		t.open = false
	}
	t.rec.Total = now.Sub(t.rec.Start)
	t.rec.Spans = t.spans
	return &t.rec
}

// SlowRing retains the N slowest trace records offered to it — a
// bounded min-heap keyed on Total, with an atomic floor so the common
// fast-request Offer rejects without taking the lock once the ring is
// full. Safe for concurrent use.
type SlowRing struct {
	floor atomic.Int64 // smallest retained Total once full; -1 while filling

	mu   sync.Mutex
	capn int
	recs []*TraceRecord // min-heap on Total
}

// NewSlowRing builds a ring retaining the n slowest records (n ≥ 1).
func NewSlowRing(n int) *SlowRing {
	if n < 1 {
		n = 1
	}
	r := &SlowRing{capn: n, recs: make([]*TraceRecord, 0, n)}
	r.floor.Store(-1)
	return r
}

// Offer considers rec for retention. Nil-safe on both sides.
func (r *SlowRing) Offer(rec *TraceRecord) {
	if r == nil || rec == nil {
		return
	}
	if f := r.floor.Load(); f >= 0 && int64(rec.Total) <= f {
		return // full, and rec is no slower than the fastest retained
	}
	r.mu.Lock()
	switch {
	case len(r.recs) < r.capn:
		r.recs = append(r.recs, rec)
		r.siftUp(len(r.recs) - 1)
	case rec.Total > r.recs[0].Total:
		r.recs[0] = rec
		r.siftDown(0)
	}
	if len(r.recs) == r.capn {
		r.floor.Store(int64(r.recs[0].Total))
	}
	r.mu.Unlock()
}

// Snapshot returns the retained records, slowest first.
func (r *SlowRing) Snapshot() []*TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*TraceRecord, len(r.recs))
	copy(out, r.recs)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Len returns the number of retained records.
func (r *SlowRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Cap returns the retention bound.
func (r *SlowRing) Cap() int {
	if r == nil {
		return 0
	}
	return r.capn
}

func (r *SlowRing) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.recs[p].Total <= r.recs[i].Total {
			return
		}
		r.recs[p], r.recs[i] = r.recs[i], r.recs[p]
		i = p
	}
}

func (r *SlowRing) siftDown(i int) {
	n := len(r.recs)
	for {
		l, rr, min := 2*i+1, 2*i+2, i
		if l < n && r.recs[l].Total < r.recs[min].Total {
			min = l
		}
		if rr < n && r.recs[rr].Total < r.recs[min].Total {
			min = rr
		}
		if min == i {
			return
		}
		r.recs[i], r.recs[min] = r.recs[min], r.recs[i]
		i = min
	}
}
