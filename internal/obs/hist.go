package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed histogram resolution: bucket i holds
// observations whose nanosecond value has bit length i — power-of-2
// bounds from 1ns to ~2.3 centuries, so one layout covers every stage
// from a 40ns atomic to a multi-second fsync stall without per-stage
// tuning.
const NumBuckets = 64

// numShards spreads concurrent observers across independent counter
// arrays (selected by the observation's low bits) so parallel ingest
// handlers don't serialize on one cache line. Must be a power of two.
const numShards = 4

// histShard is one shard's counters, padded to cache-line multiples so
// adjacent shards never false-share.
type histShard struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	_       [6]uint64
}

// Histogram is a lock-free log-bucketed latency histogram. The zero
// value is ready to use; embed it by value (no constructor, no
// allocation). Observe is wait-free apart from the max-register CAS.
type Histogram struct {
	shards [numShards]histShard
	max    atomic.Uint64
}

// bucketOf maps a nanosecond value to its bucket: the value's bit
// length (0ns → bucket 0), clamped to the top bucket.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns bucket i's inclusive upper bound in nanoseconds
// (2^i - 1; the top bucket is unbounded).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one latency. Negative durations clamp to zero.
// Zero-alloc; safe for any number of concurrent callers. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	s := &h.shards[ns&(numShards-1)]
	s.buckets[bucketOf(ns)].Add(1)
	s.count.Add(1)
	s.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnap is a point-in-time copy of a histogram, mergeable across
// tenants or processes. Concurrent observes make the copy slightly
// torn (count/sum/buckets race benignly); the skew is bounded by the
// observes in flight during the read.
type HistSnap struct {
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
	Buckets [NumBuckets]uint64
}

// Snapshot sums the shards into one portable snapshot. Nil-safe.
func (h *Histogram) Snapshot() HistSnap {
	var s HistSnap
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.SumNs += sh.sum.Load()
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
	}
	s.MaxNs = h.max.Load()
	return s
}

// Merge adds another snapshot into s (for cross-tenant aggregation).
func (s *HistSnap) Merge(o HistSnap) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the q-th quantile (0 < q ≤ 1) as a duration:
// nearest-rank over the cumulative bucket counts, reported as the
// containing bucket's upper bound — so the value is an upper estimate
// within the bucket's 2× resolution — clamped to the exact observed
// maximum (which also makes the top quantile of a one-point
// distribution exact). Zero observations yield 0.
func (s *HistSnap) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			up := BucketUpper(i)
			if up > s.MaxNs {
				up = s.MaxNs
			}
			return time.Duration(up)
		}
	}
	return time.Duration(s.MaxNs)
}

// Max returns the exact maximum observed latency.
func (s *HistSnap) Max() time.Duration { return time.Duration(s.MaxNs) }

// Mean returns the exact arithmetic mean (sum/count).
func (s *HistSnap) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// HistSummary is the JSON-friendly digest reports embed: count and the
// standard percentile set in milliseconds.
type HistSummary struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Summary digests the snapshot into the standard percentile set.
func (s *HistSnap) Summary() HistSummary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return HistSummary{
		Count: s.Count,
		P50Ms: ms(s.Quantile(0.50)),
		P95Ms: ms(s.Quantile(0.95)),
		P99Ms: ms(s.Quantile(0.99)),
		MaxMs: ms(s.Max()),
	}
}
