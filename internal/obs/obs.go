// Package obs is the serving pipeline's telemetry layer: lock-free
// log-bucketed latency histograms for every pipeline stage, and
// bounded slow-request trace rings, both designed so the ingest and
// query hot paths pay only a clock read and a handful of atomic adds —
// zero allocations, no locks.
//
// The package deliberately imports nothing from the rest of the repo,
// so any layer (server, wal, query, loadharness) can observe into it
// without import cycles. Every method on *Telemetry, *TenantObs,
// *Histogram, *ReqTrace and *SlowRing is nil-receiver safe: a caller
// built with telemetry disabled holds nil pointers and the observe
// calls degrade to a predictable branch.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage identifies one instrumented pipeline stage. The values index
// a fixed per-tenant histogram array, so observing is an array load —
// no map, no lock.
type Stage uint8

const (
	// StageHTTPIngest is the ingest handler's wall time (decode +
	// admission + WAL + ack).
	StageHTTPIngest Stage = iota
	// StageHTTPQuery is a read endpoint's wall time (/events, /related,
	// /events/{id}, /query, /archive).
	StageHTTPQuery
	// StageAdmission is the admission gate: queue-bound checks and the
	// token bucket, including the ingest-queue lock acquisition.
	StageAdmission
	// StageWALAppend is the WAL append under the queue lock (a memory
	// copy under group commit, a write+fsync in synchronous mode).
	StageWALAppend
	// StageWALCommit is the durability wait after the queue lock is
	// released — under group commit, the shared flush the ack waits on.
	StageWALCommit
	// StageWALFsync is one group-commit flush pass (write + fsync of a
	// log's pending records), observed from inside the WAL.
	StageWALFsync
	// StageQueueWait is a batch's time in the ingest queue: accepted
	// (pushed) to picked up by the apply step.
	StageQueueWait
	// StageSchedWait is the tenant's wait in the shared scheduler's
	// runnable queue: submitted to first worker turn.
	StageSchedWait
	// StageDetectQuantum is one full detector quantum (tokenize + graph
	// + reconcile).
	StageDetectQuantum
	// StageTokenize is the quantum's tokenization + vocabulary
	// interning sub-phase.
	StageTokenize
	// StageGraphMaintain is the AKG/CKG graph and dense-cluster
	// maintenance sub-phase (window slide, observation, classification,
	// edge refresh, cluster upkeep).
	StageGraphMaintain
	// StageReconcile is the dirty-set event-lifecycle reconciliation
	// sub-phase.
	StageReconcile
	// StageSnapshotPublish is building + publishing the immutable epoch
	// snapshot after a quantum.
	StageSnapshotPublish
	// StageSSEFanout is marshalling the quantum's stream event and
	// handing it to every SSE subscriber.
	StageSSEFanout
	// StageQueryExec is one unified query execution (query.Run).
	StageQueryExec
	// StageQueryPlan is the query planner: cursor decode, bounds, index
	// selection.
	StageQueryPlan
	// StageQuerySnapshotScan is the live epoch-snapshot scan.
	StageQuerySnapshotScan
	// StageQueryArchiveScan is the archive segment scan (including the
	// sidecar skip decisions).
	StageQueryArchiveScan
	// StageArchiveBlockScan is the columnar (v2) portion of an archive
	// scan: zone-map evaluation plus block decode of the survivors.
	StageArchiveBlockScan
	// StageArchiveCompact is one background archive compaction step
	// (segment merge or v1→v2 rewrite).
	StageArchiveCompact
	// StageStorageRetry is one storage-retry turn on the ingest path:
	// the backoff sleep plus the in-place WAL repair and re-append after
	// a transient device error.
	StageStorageRetry
	// StageWALReopen is one supervised quarantine-and-reopen of a
	// fail-stopped WAL (truncate to the acked prefix, seal, resume).
	StageWALReopen

	numStages
)

var stageNames = [numStages]string{
	"http_ingest",
	"http_query",
	"admission",
	"wal_append",
	"wal_commit",
	"wal_fsync",
	"queue_wait",
	"sched_wait",
	"detect_quantum",
	"tokenize",
	"graph_maintain",
	"reconcile",
	"snapshot_publish",
	"sse_fanout",
	"query_exec",
	"query_plan",
	"query_snapshot_scan",
	"query_archive_scan",
	"archive_block_scan",
	"archive_compact",
	"storage_retry",
	"wal_reopen",
}

// String returns the stage's exposition label (snake_case).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages returns every defined stage in declaration order, for
// exposition layers that enumerate the histogram set.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// NumStages is the number of defined stages.
func NumStages() int { return int(numStages) }

// Config tunes one Telemetry registry.
type Config struct {
	// TraceRingSize bounds each tenant's slow-request ring (the N
	// slowest traced requests are retained). Zero selects 64; negative
	// disables request tracing while keeping the histograms.
	TraceRingSize int
	// SlowRequest, when positive, drops traces of requests faster than
	// this from the ring offer path. Zero offers every traced request —
	// the ring keeps only the slowest anyway.
	SlowRequest time.Duration
}

// Telemetry is the process-wide registry of per-tenant telemetry. A
// nil *Telemetry is the disabled state: Tenant returns nil and every
// downstream observe call no-ops.
type Telemetry struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*TenantObs
}

// New builds a telemetry registry.
func New(cfg Config) *Telemetry {
	if cfg.TraceRingSize == 0 {
		cfg.TraceRingSize = 64
	}
	return &Telemetry{cfg: cfg, tenants: make(map[string]*TenantObs)}
}

// Tenant returns (creating on first use) the named tenant's telemetry.
// Idempotent and safe for concurrent use; nil receiver returns nil.
// Callers cache the pointer — the hot path never takes this lock.
func (tl *Telemetry) Tenant(name string) *TenantObs {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if to, ok := tl.tenants[name]; ok {
		return to
	}
	to := &TenantObs{name: name}
	if tl.cfg.TraceRingSize > 0 {
		to.ring = NewSlowRing(tl.cfg.TraceRingSize)
	}
	tl.tenants[name] = to
	return to
}

// Tenants returns every registered tenant's telemetry, name-sorted.
func (tl *Telemetry) Tenants() []*TenantObs {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	out := make([]*TenantObs, 0, len(tl.tenants))
	for _, to := range tl.tenants {
		out = append(out, to)
	}
	tl.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// SlowThreshold returns the configured slow-request trace threshold
// (0 = trace everything offered). Nil receiver returns 0.
func (tl *Telemetry) SlowThreshold() time.Duration {
	if tl == nil {
		return 0
	}
	return tl.cfg.SlowRequest
}

// TenantObs is one tenant's telemetry: a fixed stage-indexed histogram
// array and the slow-request ring. All methods are nil-receiver safe.
type TenantObs struct {
	name  string
	hists [numStages]Histogram
	ring  *SlowRing
}

// Name returns the tenant name.
func (t *TenantObs) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Observe records one stage latency. Zero-alloc, lock-free: a bucket
// index computation and four atomic adds.
func (t *TenantObs) Observe(st Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.hists[st].Observe(d)
}

// Snapshot returns a consistent-enough copy of one stage's histogram
// (bucket sums race benignly with concurrent observes).
func (t *TenantObs) Snapshot(st Stage) HistSnap {
	if t == nil {
		return HistSnap{}
	}
	return t.hists[st].Snapshot()
}

// Hist returns the stage's histogram (nil when the receiver is nil),
// for callers that observe repeatedly.
func (t *TenantObs) Hist(st Stage) *Histogram {
	if t == nil {
		return nil
	}
	return &t.hists[st]
}

// Ring returns the tenant's slow-request ring (nil when tracing is
// disabled or the receiver is nil).
func (t *TenantObs) Ring() *SlowRing {
	if t == nil {
		return nil
	}
	return t.ring
}

// OfferTrace offers a finished trace record to the slow-request ring.
func (t *TenantObs) OfferTrace(rec *TraceRecord) {
	if t == nil || rec == nil {
		return
	}
	t.ring.Offer(rec)
}
