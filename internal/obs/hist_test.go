package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	for i := 1; i < NumBuckets-1; i++ {
		if bucketOf(BucketUpper(i)) != i {
			t.Errorf("BucketUpper(%d)=%d lands in bucket %d", i, BucketUpper(i), bucketOf(BucketUpper(i)))
		}
		if bucketOf(BucketUpper(i)+1) != i+1 {
			t.Errorf("BucketUpper(%d)+1 should open bucket %d", i, i+1)
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	durs := []time.Duration{0, time.Nanosecond, 100, 1000, time.Microsecond, time.Millisecond, 3 * time.Millisecond, time.Second}
	var sum uint64
	for _, d := range durs {
		h.Observe(d)
		sum += uint64(d)
	}
	h.Observe(-5 * time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != uint64(len(durs))+1 {
		t.Fatalf("count = %d, want %d", s.Count, len(durs)+1)
	}
	if s.SumNs != sum {
		t.Fatalf("sum = %d, want %d", s.SumNs, sum)
	}
	if s.Max() != time.Second {
		t.Fatalf("max = %v, want 1s", s.Max())
	}
	if s.Buckets[0] != 2 { // the explicit 0 and the clamped negative
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 1µs, 10 of 1ms, 1 of 1s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	// p50 lands in the 1µs bucket: upper bound < 2µs.
	if q := s.Quantile(0.50); q < time.Microsecond || q >= 2*time.Microsecond {
		t.Errorf("p50 = %v, want in [1µs, 2µs)", q)
	}
	// p95 lands in the 1ms bucket.
	if q := s.Quantile(0.95); q < time.Millisecond || q >= 2*time.Millisecond {
		t.Errorf("p95 = %v, want in [1ms, 2ms)", q)
	}
	// The top quantile clamps to the exact max.
	if q := s.Quantile(1.0); q != time.Second {
		t.Errorf("p100 = %v, want exactly 1s", q)
	}
	// A one-point distribution is exact at every quantile.
	var one Histogram
	one.Observe(42 * time.Millisecond)
	os := one.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := os.Quantile(q); got != 42*time.Millisecond {
			t.Errorf("single-point q%.2f = %v, want 42ms", q, got)
		}
	}
	var empty HistSnap
	if empty.Quantile(0.99) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 20 {
		t.Fatalf("merged count = %d, want 20", sa.Count)
	}
	if sa.Max() != time.Millisecond {
		t.Fatalf("merged max = %v, want 1ms", sa.Max())
	}
	if sa.SumNs != 10*uint64(time.Microsecond)+10*uint64(time.Millisecond) {
		t.Fatalf("merged sum = %d", sa.SumNs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Max() != time.Duration(goroutines*per-1) {
		t.Fatalf("max = %d, want %d", s.Max(), goroutines*per-1)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	to := &TenantObs{name: "t"}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { to.Observe(StageWALAppend, time.Microsecond) }); n != 0 {
		t.Errorf("TenantObs.Observe allocates %v per op, want 0", n)
	}
	var nilObs *TenantObs
	if n := testing.AllocsPerRun(1000, func() { nilObs.Observe(StageWALAppend, time.Microsecond) }); n != 0 {
		t.Errorf("nil TenantObs.Observe allocates %v per op, want 0", n)
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Millisecond)
	snap := h.Snapshot()
	s := snap.Summary()
	if s.Count != 1 || s.MaxMs != 2 || s.P99Ms != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range Stages() {
		name := st.String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has no name", st)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if NumStages() < 8 {
		t.Fatalf("NumStages() = %d, want >= 8", NumStages())
	}
}

func TestTelemetryRegistry(t *testing.T) {
	tl := New(Config{TraceRingSize: 4})
	a := tl.Tenant("a")
	if a == nil || tl.Tenant("a") != a {
		t.Fatal("Tenant must be idempotent")
	}
	tl.Tenant("b")
	names := []string{}
	for _, to := range tl.Tenants() {
		names = append(names, to.Name())
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Tenants() = %v", names)
	}
	if a.Ring() == nil || a.Ring().Cap() != 4 {
		t.Fatal("ring not configured")
	}
	// Disabled state: nil registry, nil tenant, everything no-ops.
	var nilTl *Telemetry
	if nilTl.Tenant("x") != nil || nilTl.Tenants() != nil || nilTl.SlowThreshold() != 0 {
		t.Fatal("nil Telemetry must degrade to no-ops")
	}
	// Negative ring size disables tracing but keeps histograms.
	noRing := New(Config{TraceRingSize: -1}).Tenant("x")
	if noRing.Ring() != nil {
		t.Fatal("negative TraceRingSize should disable the ring")
	}
	noRing.Observe(StageHTTPIngest, time.Millisecond)
	if noRing.Snapshot(StageHTTPIngest).Count != 1 {
		t.Fatal("histograms must work without a ring")
	}
}
