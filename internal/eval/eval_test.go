package eval

import (
	"testing"

	"repro/internal/detect"
	"repro/internal/tracegen"
)

// TestEndToEndTW is the headline integration test: the detector must find
// every injected real event in a TW-profile trace with high precision, and
// the injected spurious burst must be flagged by the post-hoc rule.
func TestEndToEndTW(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	msgs, gt := tracegen.Generate(tracegen.TWConfig(42, 60000))
	res, d, err := Run(detect.Config{}, msgs, &gt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall < 0.8 {
		t.Fatalf("recall = %v (%d/%d), want ≥ 0.8", res.Recall, res.RealDetected, res.RealTotal)
	}
	if res.Precision < 0.7 {
		t.Fatalf("precision = %v, want ≥ 0.7", res.Precision)
	}
	if res.MeanLatency > 15 {
		t.Fatalf("mean latency %v quanta too high", res.MeanLatency)
	}
	if res.AvgClusterSize <= 2 || res.AvgClusterSize > 12 {
		t.Fatalf("avg cluster size %v implausible", res.AvgClusterSize)
	}
	// The spurious burst, if reported, must be recognisable post hoc.
	for _, ev := range d.AllEvents() {
		if !ev.Reported {
			continue
		}
		spuriousGT := false
		for kw := range ev.AllKeywords {
			if len(kw) > 4 && kw[:4] == "spam" {
				spuriousGT = true
			}
		}
		if spuriousGT && !ev.Spurious() {
			t.Fatalf("injected spurious burst not flagged: history=%v evolved=%v",
				ev.RankHistory, ev.Evolved)
		}
	}
}

// TestEndToEndES checks the denser event-specific profile.
func TestEndToEndES(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	msgs, gt := tracegen.Generate(tracegen.ESConfig(7, 60000))
	res, _, err := Run(detect.Config{}, msgs, &gt)
	if err != nil {
		t.Fatal(err)
	}
	if res.RealTotal < 3 {
		t.Fatalf("ES trace should carry several events, got %d", res.RealTotal)
	}
	if res.Recall < 0.7 {
		t.Fatalf("ES recall = %v, want ≥ 0.7", res.Recall)
	}
}

// TestRecallRisesWithDelta reproduces the Figure 7/8 trend on a small
// trace: larger quanta (less stringent burstiness) must not lower recall.
func TestRecallRisesWithDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	msgs, gt := tracegen.Generate(tracegen.TWConfig(3, 50000))
	recall := func(delta int) float64 {
		res, _, err := Run(detect.Config{Delta: delta}, msgs, &gt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Recall
	}
	lo, hi := recall(80), recall(240)
	if hi < lo {
		t.Fatalf("recall fell with larger quantum: Δ80→%v Δ240→%v", lo, hi)
	}
}

// TestBelowBurstEventsNotDetected: events whose keywords never reach τ
// must not be discovered (the paper's 27-headline exclusion).
func TestBelowBurstEventsNotDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	msgs, gt := tracegen.Generate(tracegen.GroundTruthConfig(5, 40000))
	_, d, err := Run(detect.Config{}, msgs, &gt)
	if err != nil {
		t.Fatal(err)
	}
	quiet := map[string]bool{}
	for _, g := range gt.OfKind(tracegen.BelowBurst) {
		for _, kw := range g.Keywords {
			quiet[kw] = true
		}
	}
	for _, ev := range d.AllEvents() {
		if !ev.Reported {
			continue
		}
		for kw := range ev.AllKeywords {
			if quiet[kw] {
				t.Fatalf("below-burst keyword %q appeared in reported event", kw)
			}
		}
	}
}

func TestEvaluateMatching(t *testing.T) {
	gt := tracegen.GroundTruth{Events: []tracegen.GTEvent{
		{ID: 1, Kind: tracegen.Real, Keywords: []string{"alpha", "beta", "gamma"}, StartMsg: 0},
		{ID: 2, Kind: tracegen.Spurious, Keywords: []string{"spamx", "spamy"}, StartMsg: 100},
	}}
	events := []*detect.Event{
		{ID: 1, Reported: true, FirstReported: 2, Size: 3, PeakRank: 50,
			AllKeywords: set("alpha", "beta", "noise")},
		{ID: 2, Reported: true, FirstReported: 3, Size: 2, PeakRank: 20,
			AllKeywords: set("spamx", "spamy")},
		{ID: 3, Reported: true, FirstReported: 4, Size: 3, PeakRank: 10,
			AllKeywords: set("unrelated", "words", "here")},
		{ID: 4, Reported: false,
			AllKeywords: set("alpha", "gamma")}, // never reported: ignored
	}
	res := Evaluate(&gt, events, 10)
	if res.RealTotal != 1 || res.RealDetected != 1 {
		t.Fatalf("real detection wrong: %+v", res)
	}
	if res.ReportedEvents != 3 {
		t.Fatalf("reported = %d", res.ReportedEvents)
	}
	if res.TruePositives != 1 || res.FalsePositives != 2 {
		t.Fatalf("tp/fp = %d/%d", res.TruePositives, res.FalsePositives)
	}
	if res.Unmatched != 1 {
		t.Fatalf("unmatched = %d", res.Unmatched)
	}
	if res.Recall != 1 || res.Precision != 1.0/3 {
		t.Fatalf("p/r = %v/%v", res.Precision, res.Recall)
	}
	if len(res.Outcomes) != 1 || !res.Outcomes[0].Detected {
		t.Fatalf("outcomes wrong: %+v", res.Outcomes)
	}
	if res.Outcomes[0].LatencyQuanta != 1 { // start quantum 1, reported 2
		t.Fatalf("latency = %d", res.Outcomes[0].LatencyQuanta)
	}
}

func TestEvaluateSingleKeywordOverlapIgnored(t *testing.T) {
	gt := tracegen.GroundTruth{Events: []tracegen.GTEvent{
		{ID: 1, Kind: tracegen.Real, Keywords: []string{"alpha", "beta"}},
	}}
	events := []*detect.Event{
		{ID: 1, Reported: true, AllKeywords: set("alpha", "unrelated")},
	}
	res := Evaluate(&gt, events, 10)
	if res.TruePositives != 0 {
		t.Fatalf("single-keyword overlap should not match")
	}
}

func set(ws ...string) map[string]struct{} {
	m := make(map[string]struct{}, len(ws))
	for _, w := range ws {
		m[w] = struct{}{}
	}
	return m
}

func TestF1(t *testing.T) {
	gt := tracegen.GroundTruth{Events: []tracegen.GTEvent{
		{ID: 1, Kind: tracegen.Real, Keywords: []string{"alpha", "beta"}},
		{ID: 2, Kind: tracegen.Real, Keywords: []string{"gamma", "delta"}},
	}}
	events := []*detect.Event{
		{ID: 1, Reported: true, AllKeywords: set("alpha", "beta")},
		{ID: 2, Reported: true, AllKeywords: set("junk", "words")},
	}
	res := Evaluate(&gt, events, 10)
	// precision 0.5, recall 0.5 → F1 0.5
	if res.F1 != 0.5 {
		t.Fatalf("F1 = %v, want 0.5", res.F1)
	}
	empty := Evaluate(&tracegen.GroundTruth{}, nil, 10)
	if empty.F1 != 0 {
		t.Fatalf("empty F1 should be 0")
	}
}

func TestFalsePositiveBreakdown(t *testing.T) {
	gt := tracegen.GroundTruth{Events: []tracegen.GTEvent{
		{ID: 1, Kind: tracegen.Real, Keywords: []string{"alpha", "beta"}},
		{ID: 2, Kind: tracegen.Spurious, Keywords: []string{"spamx", "spamy"}},
		{ID: 3, Kind: tracegen.Discussion, Keywords: []string{"debx", "deby"}},
	}}
	events := []*detect.Event{
		{ID: 1, Reported: true, AllKeywords: set("alpha", "beta")},
		{ID: 2, Reported: true, AllKeywords: set("spamx", "spamy")},
		{ID: 3, Reported: true, AllKeywords: set("debx", "deby")},
		{ID: 4, Reported: true, AllKeywords: set("noise", "junk")},
	}
	res := Evaluate(&gt, events, 10)
	if res.SpuriousMatched != 1 || res.DiscussionMatched != 1 || res.Unmatched != 1 {
		t.Fatalf("breakdown wrong: spurious=%d discussion=%d unmatched=%d",
			res.SpuriousMatched, res.DiscussionMatched, res.Unmatched)
	}
	if res.FalsePositives != 3 || res.TruePositives != 1 {
		t.Fatalf("totals wrong: tp=%d fp=%d", res.TruePositives, res.FalsePositives)
	}
}
