// Package eval measures a detector run against the exact ground truth of a
// synthetic trace: precision, recall, detection latency and the quality
// metrics of Section 7.2 (average cluster size, average rank).
//
// Because the workload generator emits disjoint keyword pools per injected
// event, matching a discovered cluster to its ground-truth event is
// unambiguous: two shared keywords identify the event. Unlike the paper —
// which had to extrapolate missed events by manually sampling bursty nouns
// (Section 7.2.2) — the synthetic ground truth makes recall exact.
package eval

import (
	"sort"

	"repro/internal/detect"
	"repro/internal/stream"
	"repro/internal/tracegen"
)

// MinOverlap is the number of shared keywords that ties a discovered event
// to a ground-truth event.
const MinOverlap = 2

// Outcome records how one ground-truth event fared.
type Outcome struct {
	GT            tracegen.GTEvent
	Detected      bool
	FirstReported int // quantum; valid when Detected
	StartQuantum  int // quantum the event began in the stream
	LatencyQuanta int // FirstReported - StartQuantum
	EventIDs      []uint64
}

// Result aggregates one evaluated run.
type Result struct {
	// Ground-truth side.
	RealTotal    int // injected real events
	RealDetected int
	Outcomes     []Outcome
	// Discovered side.
	ReportedEvents int // events that ever passed reporting filters
	TruePositives  int // reported events matching a real GT event
	FalsePositives int // reported events matching nothing real
	// Headline metrics.
	Precision float64
	Recall    float64
	F1        float64
	// Quality metrics (over reported events).
	AvgClusterSize float64
	AvgRank        float64
	MeanLatency    float64 // quanta, over detected real events
	// False-positive breakdown: reported events that matched an injected
	// spurious burst, an injected discussion, or nothing at all (the
	// paper's "events not in Google headlines" bucket).
	SpuriousMatched   int
	DiscussionMatched int
	Unmatched         int
}

// Evaluate scores the detector's full event history against ground truth.
// delta is the quantum size in messages (to convert message indices to
// quanta for latency).
func Evaluate(gt *tracegen.GroundTruth, events []*detect.Event, delta int) Result {
	if delta <= 0 {
		delta = 1
	}
	var res Result

	// Index ground-truth keywords -> GT event id.
	kwOwner := make(map[string]int)
	gtByID := make(map[int]tracegen.GTEvent, len(gt.Events))
	for _, g := range gt.Events {
		gtByID[g.ID] = g
		for _, kw := range g.Keywords {
			kwOwner[kw] = g.ID
		}
	}

	// Match each reported event to at most one GT event (max overlap).
	matched := make(map[int][]*detect.Event) // gtID -> events
	var sizeSum, rankSum float64
	for _, ev := range events {
		if !ev.Reported {
			continue
		}
		res.ReportedEvents++
		sizeSum += float64(ev.Size)
		rankSum += float64(ev.PeakRank)
		overlap := make(map[int]int)
		for kw := range ev.AllKeywords {
			if id, ok := kwOwner[kw]; ok {
				overlap[id]++
			}
		}
		bestID, best := 0, 0
		for id, n := range overlap {
			if n > best || (n == best && id < bestID) {
				bestID, best = id, n
			}
		}
		if best >= MinOverlap {
			matched[bestID] = append(matched[bestID], ev)
			switch gtByID[bestID].Kind {
			case tracegen.Real:
				res.TruePositives++
			case tracegen.Spurious:
				res.FalsePositives++
				res.SpuriousMatched++
			case tracegen.Discussion:
				res.FalsePositives++
				res.DiscussionMatched++
			default:
				res.FalsePositives++
			}
		} else {
			res.FalsePositives++
			res.Unmatched++
		}
	}

	// Ground-truth outcomes for real events.
	for _, g := range gt.Events {
		if g.Kind != tracegen.Real {
			continue
		}
		res.RealTotal++
		out := Outcome{GT: g, StartQuantum: g.StartMsg/delta + 1}
		if evs := matched[g.ID]; len(evs) > 0 {
			out.Detected = true
			res.RealDetected++
			first := 0
			for _, ev := range evs {
				out.EventIDs = append(out.EventIDs, ev.ID)
				if first == 0 || ev.FirstReported < first {
					first = ev.FirstReported
				}
			}
			sort.Slice(out.EventIDs, func(i, j int) bool { return out.EventIDs[i] < out.EventIDs[j] })
			out.FirstReported = first
			out.LatencyQuanta = first - out.StartQuantum
		}
		res.Outcomes = append(res.Outcomes, out)
	}

	if res.ReportedEvents > 0 {
		res.Precision = float64(res.TruePositives) / float64(res.ReportedEvents)
		res.AvgClusterSize = sizeSum / float64(res.ReportedEvents)
		res.AvgRank = rankSum / float64(res.ReportedEvents)
	}
	if res.RealTotal > 0 {
		res.Recall = float64(res.RealDetected) / float64(res.RealTotal)
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	latSum, latN := 0.0, 0
	for _, o := range res.Outcomes {
		if o.Detected {
			latSum += float64(o.LatencyQuanta)
			latN++
		}
	}
	if latN > 0 {
		res.MeanLatency = latSum / float64(latN)
	}
	return res
}

// Run drives a fresh detector over msgs and evaluates it in one call.
func Run(cfg detect.Config, msgs []stream.Message, gt *tracegen.GroundTruth) (Result, *detect.Detector, error) {
	d := detect.New(cfg)
	src := stream.NewSliceSource(msgs)
	if err := d.Run(src, nil); err != nil {
		return Result{}, nil, err
	}
	delta := cfg.Delta
	if delta <= 0 {
		delta = 160 // detect.Config default
	}
	res := Evaluate(gt, d.AllEvents(), delta)
	return res, d, nil
}
