package detect

import (
	"runtime"
	"sync"

	"repro/internal/stream"
)

// RunParallel drains a source like Run but performs the tokenization /
// grouping stage of each quantum on a pool of worker goroutines, applying
// the prepared quanta to the graph layers strictly in order. This realises
// the parallelism the paper points out in Section 7.3 ("multiple
// simultaneous computations are allowed"): text processing — the dominant
// per-message cost — scales across cores, while graph maintenance, which
// must observe quanta in order, stays sequential.
//
// The result is bit-identical to Run on the same stream (tested), so
// callers may switch freely based on core count. workers ≤ 0 selects
// GOMAXPROCS.
func (d *Detector) RunParallel(src stream.Source, workers int, onQuantum func(*QuantumResult)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return d.Run(src, onQuantum)
	}

	type job struct {
		seq   int
		batch []stream.Message
	}
	type done struct {
		seq  int
		prep *prepared
	}

	// Each worker draws a per-worker scratch arena from the pool,
	// prepares into it, and hands it to the applier, which returns it
	// after consumption — steady state recycles a fixed set of arenas.
	prepPool := sync.Pool{New: func() any { return new(prepared) }}
	jobs := make(chan job, workers)
	results := make(chan done, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := prepPool.Get().(*prepared)
				d.prepareQuantumInto(p, j.batch)
				results <- done{seq: j.seq, prep: p}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Consumer: applies prepared quanta in sequence order, buffering
	// out-of-order completions.
	applyErr := make(chan error, 1)
	var applied sync.WaitGroup
	applied.Add(1)
	go func() {
		defer applied.Done()
		pending := make(map[int]*prepared)
		next := 0
		for r := range results {
			pending[r.seq] = r.prep
			for {
				prep, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				res := d.applyQuantum(prep)
				prepPool.Put(prep)
				if onQuantum != nil {
					onQuantum(&res)
				}
				next++
			}
		}
		applyErr <- nil
	}()

	// Producer: cut the stream into quanta. Batches must be copied — the
	// quantizers reuse their buffers.
	seq := 0
	emit := func(batch []stream.Message) {
		cp := make([]stream.Message, len(batch))
		copy(cp, batch)
		jobs <- job{seq: seq, batch: cp}
		seq++
	}
	var srcErr error
	for {
		m, ok, err := src.Next()
		if err != nil {
			srcErr = err
			break
		}
		if !ok {
			break
		}
		d.processed++
		if d.tquant != nil {
			for _, batch := range d.tquant.Add(m) {
				emit(batch)
			}
		} else if batch := d.quant.Add(m); batch != nil {
			emit(batch)
		}
	}
	if srcErr == nil {
		var tail []stream.Message
		if d.tquant != nil {
			tail = d.tquant.Flush()
		} else {
			tail = d.quant.Flush()
		}
		if len(tail) > 0 {
			emit(tail)
		}
	}
	close(jobs)
	applied.Wait()
	<-applyErr
	return srcErr
}
