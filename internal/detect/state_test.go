package detect

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stream"
	"repro/internal/tracegen"
)

// eventsDigest summarises the full event history for comparison.
func eventsDigest(d *Detector) string {
	var b bytes.Buffer
	for _, ev := range d.AllEvents() {
		fmt.Fprintf(&b, "%d|%v|%v|born=%d|last=%d|rank=%.6f|peak=%.6f|sup=%d|rep=%v|first=%d|evolved=%v|mqc=%v\n",
			ev.ID, ev.State, ev.Keywords, ev.BornQuantum, ev.LastQuantum,
			ev.Rank, ev.PeakRank, ev.Support, ev.Reported, ev.FirstReported,
			ev.Evolved, ev.ExactMQC)
	}
	return b.String()
}

// TestCheckpointResumeEquivalence is the central persistence property:
// running a trace straight through must equal running half, saving,
// loading into a fresh detector, and running the rest — identical event
// histories, identical graph state.
func TestCheckpointResumeEquivalence(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.ESConfig(77, 30000))
	cfg := Config{Delta: 120, TrackCKG: true}

	// Uninterrupted run.
	ref := New(cfg)
	if err := ref.Run(stream.NewSliceSource(msgs), nil); err != nil {
		t.Fatal(err)
	}

	// Split at an arbitrary point (not a quantum boundary: 13001).
	cut := 13001
	d1 := New(cfg)
	for _, m := range msgs[:cut] {
		d1.Ingest(m)
	}
	var buf bytes.Buffer
	if err := d1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs[cut:] {
		d2.Ingest(m)
	}
	d2.Flush()
	ref2 := New(cfg) // re-run reference including the trailing Flush
	_ = ref2
	refDetector := New(cfg)
	if err := refDetector.Run(stream.NewSliceSource(msgs), nil); err != nil {
		t.Fatal(err)
	}

	if got, want := eventsDigest(d2), eventsDigest(refDetector); got != want {
		t.Fatalf("event histories diverge after checkpoint resume:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
	if d2.Processed() != refDetector.Processed() {
		t.Fatalf("processed counts differ: %d vs %d", d2.Processed(), refDetector.Processed())
	}
	// Graph-level state must agree too.
	g1 := refDetector.AKG().Engine().Graph()
	g2 := d2.AKG().Engine().Graph()
	if g1.NodeCount() != g2.NodeCount() || g1.EdgeCount() != g2.EdgeCount() {
		t.Fatalf("graphs differ: %d/%d vs %d/%d nodes/edges",
			g1.NodeCount(), g1.EdgeCount(), g2.NodeCount(), g2.EdgeCount())
	}
	if !reflect.DeepEqual(refDetector.AKG().Engine().Snapshot(), d2.AKG().Engine().Snapshot()) {
		t.Fatalf("clusterings differ after resume")
	}
}

func TestCheckpointRoundTripState(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.TWConfig(5, 8000))
	d := New(Config{Delta: 100})
	for _, m := range msgs {
		d.Ingest(m)
	}
	s1 := d.State()
	d2, err := FromState(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := d2.State()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("State → FromState → State not a fixpoint")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("definitely not gob"))); err == nil {
		t.Fatalf("garbage checkpoint accepted")
	}
	if _, err := FromState(DetectorState{Magic: "wrong"}); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

func TestCheckpointPendingBuffer(t *testing.T) {
	d := New(Config{Delta: 10})
	for i := 0; i < 7; i++ { // partial quantum
		d.Ingest(stream.Message{ID: uint64(i + 1), User: uint64(i), Text: "storm coast"})
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Three more messages should complete the quantum on the restored
	// detector exactly as they would have on the original.
	var res *QuantumResult
	for i := 7; i < 10; i++ {
		res = d2.Ingest(stream.Message{ID: uint64(i + 1), User: uint64(i), Text: "storm coast"})
	}
	if res == nil || res.Quantum != 1 {
		t.Fatalf("restored pending buffer did not complete the quantum")
	}
	if res.Stats.Keywords != 2 {
		t.Fatalf("restored quantum saw %d keywords, want 2", res.Stats.Keywords)
	}
}
