package detect

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/akg"
	"repro/internal/stream"
)

// msgsFrom builds one message per entry: (user, text).
func msgsFrom(entries ...[2]string) []stream.Message {
	out := make([]stream.Message, len(entries))
	for i, e := range entries {
		var user uint64
		fmt.Sscanf(e[0], "%d", &user)
		out[i] = stream.Message{ID: uint64(i + 1), User: user, Time: int64(i), Text: e[1]}
	}
	return out
}

// burstMessages makes n messages from n distinct users all saying text.
func burstMessages(startUser int, n int, text string) []stream.Message {
	out := make([]stream.Message, n)
	for i := range out {
		out[i] = stream.Message{
			ID:   uint64(i + 1),
			User: uint64(startUser + i),
			Time: int64(i),
			Text: text,
		}
	}
	return out
}

func testConfig(delta int) Config {
	return Config{
		Delta: delta,
		AKG:   akg.Config{Tau: 3, Beta: 0.2, Window: 5},
	}
}

func TestQuantumBoundary(t *testing.T) {
	d := New(testConfig(4))
	msgs := burstMessages(0, 4, "earthquake struck turkey")
	var res *QuantumResult
	for _, m := range msgs {
		res = d.Ingest(m)
	}
	if res == nil {
		t.Fatalf("quantum did not complete after Delta messages")
	}
	if res.Quantum != 1 {
		t.Fatalf("quantum index %d", res.Quantum)
	}
	if d.Processed() != 4 {
		t.Fatalf("Processed = %d", d.Processed())
	}
}

func TestEventDiscoveredFromBurst(t *testing.T) {
	d := New(testConfig(8))
	res := runAll(t, d, burstMessages(0, 8, "earthquake struck eastern turkey"))
	if len(res) == 0 {
		t.Fatalf("no quantum processed")
	}
	last := res[len(res)-1]
	if len(last.Reports) != 1 {
		t.Fatalf("want 1 reported event, got %d", len(last.Reports))
	}
	r := last.Reports[0]
	if len(r.Keywords) != 4 {
		t.Fatalf("keywords = %v", r.Keywords)
	}
	if r.Rank <= 0 || r.Support != 8 {
		t.Fatalf("report = %+v", r)
	}
}

func TestFlushProcessesPartialQuantum(t *testing.T) {
	d := New(testConfig(100))
	for _, m := range burstMessages(0, 6, "flood warning coast") {
		if r := d.Ingest(m); r != nil {
			t.Fatalf("quantum completed early")
		}
	}
	res := d.Flush()
	if res == nil || res.Quantum != 1 {
		t.Fatalf("Flush did not process partial quantum")
	}
	if d.Flush() != nil {
		t.Fatalf("second Flush should be nil")
	}
}

func TestEventEvolution(t *testing.T) {
	d := New(testConfig(6))
	// Quantum 1: 4-keyword event.
	q1 := burstMessages(0, 6, "earthquake struck eastern turkey")
	// Quantum 2: same users adopt "5.9" alongside old keywords.
	q2 := burstMessages(0, 6, "earthquake turkey 5.9")
	runAll(t, d, append(q1, q2...))
	evs := d.AllEvents()
	if len(evs) != 1 {
		t.Fatalf("want one tracked event, got %d", len(evs))
	}
	ev := evs[0]
	if !ev.Evolved {
		t.Fatalf("event did not evolve")
	}
	found := false
	for _, kw := range ev.Keywords {
		if kw == "5.9" {
			found = true
		}
	}
	if !found {
		t.Fatalf("5.9 did not join the cluster: %v", ev.Keywords)
	}
	if _, ok := ev.AllKeywords["eastern"]; !ok {
		t.Fatalf("historical keyword lost from AllKeywords")
	}
	if len(ev.RankHistory) != 2 {
		t.Fatalf("rank history = %v", ev.RankHistory)
	}
}

func TestEventDeathAfterWindow(t *testing.T) {
	cfg := testConfig(6)
	cfg.AKG.Window = 2
	d := New(cfg)
	msgs := burstMessages(0, 6, "earthquake struck turkey")
	// Then three quanta of unrelated chatter from other users.
	for q := 0; q < 3; q++ {
		msgs = append(msgs, burstMessages(100+10*q, 6, fmt.Sprintf("weather sunny nice%d", q))...)
	}
	runAll(t, d, msgs)
	var quake *Event
	for _, ev := range d.AllEvents() {
		for _, kw := range ev.Keywords {
			if kw == "earthquake" {
				quake = ev
			}
		}
	}
	if quake == nil {
		t.Fatalf("earthquake event never tracked")
	}
	if quake.State != EventEnded {
		t.Fatalf("event state = %v, want ended", quake.State)
	}
	if len(d.LiveEvents()) != 0 {
		// the weather cluster may be live; ensure earthquake is not
		for _, ev := range d.LiveEvents() {
			if ev.ID == quake.ID {
				t.Fatalf("dead event still live")
			}
		}
	}
}

func TestNounFilterSuppressesVerbOnlyClusters(t *testing.T) {
	cfg := testConfig(6)
	d := New(cfg)
	// All words are in the verb/adjective lexicon → filtered.
	res := runAll(t, d, burstMessages(0, 6, "struck massive huge"))
	for _, r := range res {
		if len(r.Reports) != 0 {
			t.Fatalf("verb-only cluster reported: %+v", r.Reports)
		}
	}
	// Same shape with a noun: reported.
	d2 := New(cfg)
	res2 := runAll(t, d2, burstMessages(0, 6, "struck massive earthquake"))
	if len(res2[len(res2)-1].Reports) == 0 {
		t.Fatalf("noun-bearing cluster suppressed")
	}
	// Disabling the filter reports both.
	cfg.DisableNounFilter = true
	d3 := New(cfg)
	res3 := runAll(t, d3, burstMessages(0, 6, "struck massive huge"))
	if len(res3[len(res3)-1].Reports) == 0 {
		t.Fatalf("filter not disabled")
	}
}

func TestRankThresholdFilter(t *testing.T) {
	cfg := testConfig(6)
	cfg.SpuriousFactor = 1e9 // absurd cutoff: nothing reportable
	d := New(cfg)
	res := runAll(t, d, burstMessages(0, 6, "earthquake struck turkey"))
	for _, r := range res {
		if len(r.Reports) != 0 {
			t.Fatalf("rank filter did not suppress: %+v", r.Reports)
		}
	}
	// The event is still tracked internally.
	if len(d.AllEvents()) != 1 {
		t.Fatalf("event not tracked despite filter")
	}
	if d.AllEvents()[0].Reported {
		t.Fatalf("event marked reported despite filter")
	}
}

func TestMergeTracking(t *testing.T) {
	cfg := testConfig(5)
	d := New(cfg)
	var msgs []stream.Message
	// Quantum 1: two disjoint events from disjoint user communities.
	for i := 0; i < 5; i++ {
		user := uint64(i)
		text := "fire downtown harbor"
		if i >= 3 {
			user = uint64(100 + i)
			text = "storm coast warning"
		}
		msgs = append(msgs, stream.Message{ID: uint64(len(msgs) + 1), User: user, Time: int64(len(msgs)), Text: text})
	}
	// Give both events their own full quantum to form clusters.
	msgs = append(msgs, burstMessages(0, 5, "fire downtown harbor")...)
	msgs = append(msgs, burstMessages(100, 5, "storm coast warning")...)
	// Then a quantum where the same users use both vocabularies: merge.
	msgs = append(msgs, burstMessages(0, 5, "fire storm downtown coast harbor warning")...)
	runAll(t, d, msgs)
	merged := 0
	for _, ev := range d.AllEvents() {
		if ev.State == EventMerged {
			merged++
		}
	}
	if merged == 0 {
		t.Fatalf("no merge tracked; events: %d", len(d.AllEvents()))
	}
}

func TestCKGTracking(t *testing.T) {
	cfg := testConfig(6)
	cfg.TrackCKG = true
	d := New(cfg)
	res := runAll(t, d, burstMessages(0, 6, "earthquake struck turkey"))
	last := res[len(res)-1]
	if last.CKGNodes == 0 || last.CKGEdges == 0 {
		t.Fatalf("CKG not tracked: %+v", last)
	}
	if last.AKGNodes > last.CKGNodes {
		t.Fatalf("AKG larger than CKG")
	}
}

func TestEventStateString(t *testing.T) {
	if EventLive.String() != "live" || EventMerged.String() != "merged" || EventEnded.String() != "ended" {
		t.Fatalf("state strings wrong")
	}
	if EventState(42).String() == "" {
		t.Fatalf("unknown state should format")
	}
}

func TestEmptyMessagesHarmless(t *testing.T) {
	d := New(testConfig(3))
	msgs := []stream.Message{
		{ID: 1, User: 1, Text: ""},
		{ID: 2, User: 2, Text: "   !!! "},
		{ID: 3, User: 3, Text: "the and of"},
	}
	for _, m := range msgs {
		d.Ingest(m)
	}
	if d.Processed() != 3 {
		t.Fatalf("Processed = %d", d.Processed())
	}
	if got := d.AKG().NodeCount(); got != 0 {
		t.Fatalf("empty chatter created %d AKG nodes", got)
	}
}

func runAll(t *testing.T, d *Detector, msgs []stream.Message) []*QuantumResult {
	t.Helper()
	var out []*QuantumResult
	err := d.Run(stream.NewSliceSource(msgs), func(r *QuantumResult) {
		out = append(out, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// timeMessages builds n burst messages with explicit timestamps.
func timeMessages(startUser int, n int, t0 int64, gap int64, text string) []stream.Message {
	out := make([]stream.Message, n)
	for i := range out {
		out[i] = stream.Message{
			ID:   uint64(startUser + i + 1),
			User: uint64(startUser + i),
			Time: t0 + int64(i)*gap,
			Text: text,
		}
	}
	return out
}

func TestTimeBasedQuanta(t *testing.T) {
	cfg := Config{
		QuantumTime: 100,
		AKG:         akg.Config{Tau: 3, Beta: 0.2, Window: 3},
	}
	d := New(cfg)
	// Six users tweet within [0,100): one quantum.
	msgs := timeMessages(0, 6, 0, 10, "earthquake struck turkey")
	// A later message at t=120 closes the quantum.
	msgs = append(msgs, stream.Message{ID: 99, User: 99, Time: 120, Text: "unrelated chatter"})
	var results []*QuantumResult
	for _, m := range msgs {
		results = append(results, d.IngestAll(m)...)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 completed quantum, got %d", len(results))
	}
	if len(results[0].Reports) != 1 {
		t.Fatalf("time-based quantum missed the event: %+v", results[0])
	}
}

// TestTimeQuantaGapExpiresEvents: silence in the stream must still slide
// the window and expire events — the property message-count quanta cannot
// provide.
func TestTimeQuantaGapExpiresEvents(t *testing.T) {
	cfg := Config{
		QuantumTime: 100,
		AKG:         akg.Config{Tau: 3, Beta: 0.2, Window: 2},
	}
	d := New(cfg)
	for _, m := range timeMessages(0, 6, 0, 10, "earthquake struck turkey") {
		d.IngestAll(m)
	}
	// One lone message far in the future: the gap spans many quanta, the
	// event's id sets expire on the way.
	res := d.IngestAll(stream.Message{ID: 50, User: 50, Time: 1000, Text: "hello world"})
	if len(res) < 3 {
		t.Fatalf("gap produced only %d quanta", len(res))
	}
	for _, ev := range d.AllEvents() {
		if ev.State == EventLive {
			t.Fatalf("event survived a %d-quantum silence: %+v", len(res), ev)
		}
	}
}

func TestTimeQuantaCheckpointResume(t *testing.T) {
	cfg := Config{QuantumTime: 50, AKG: akg.Config{Tau: 2, Beta: 0.2, Window: 4}}
	d := New(cfg)
	msgs := timeMessages(0, 20, 0, 9, "storm coast warning")
	for _, m := range msgs[:11] {
		d.IngestAll(m)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(cfg)
	for _, m := range msgs {
		ref.IngestAll(m)
	}
	for _, m := range msgs[11:] {
		d2.IngestAll(m)
	}
	if eventsDigest(d2) != eventsDigest(ref) {
		t.Fatalf("time-quantum checkpoint resume diverged:\n%s\nvs\n%s",
			eventsDigest(d2), eventsDigest(ref))
	}
}

func TestQuantumElapsedRecorded(t *testing.T) {
	d := New(testConfig(4))
	var res *QuantumResult
	for _, m := range burstMessages(0, 4, "earthquake struck turkey") {
		if r := d.Ingest(m); r != nil {
			res = r
		}
	}
	if res == nil || res.Elapsed <= 0 {
		t.Fatalf("Elapsed not recorded: %+v", res)
	}
}
