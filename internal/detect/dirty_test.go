package detect

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/akg"
	"repro/internal/tracegen"
)

// runReconcileMode drains a synthetic trace through a detector pinned to
// one reconciliation path, capturing every per-quantum wire artifact
// plus the final event registry.
func runReconcileMode(t *testing.T, mode int, retain int) (quanta []string, final string) {
	t.Helper()
	msgs, _ := tracegen.Generate(tracegen.TWConfig(7, 16000))
	d := New(Config{Delta: 80, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 8}})
	d.reconcileMode = mode
	for _, m := range msgs {
		for _, res := range d.IngestAll(m) {
			raw, err := json.Marshal(struct {
				Q       int
				Reports []Report
				Born    []uint64
				Ended   []uint64
				Merged  []MergeNote
			}{res.Quantum, res.Reports, res.Born, res.Ended, res.Merged})
			if err != nil {
				t.Fatal(err)
			}
			quanta = append(quanta, string(raw))
		}
		if retain > 0 {
			d.TrimFinished(retain)
		}
	}
	if res := d.Flush(); res != nil {
		quanta = append(quanta, fmt.Sprintf("flush-%d", res.Quantum))
	}
	type finalEv struct {
		Ev       Event
		Spurious bool
	}
	var evs []finalEv
	for _, ev := range d.AllEvents() {
		evs = append(evs, finalEv{Ev: *ev, Spurious: ev.Spurious()})
	}
	raw, err := json.Marshal(evs)
	if err != nil {
		t.Fatal(err)
	}
	return quanta, string(raw)
}

// TestReconcileDirtyEquivalence is the replay-equivalence guarantee of
// the dirty-set maintenance layer: the incremental path (only clusters
// touched by the engine or containing a support-dirty vertex are
// recomputed) must produce byte-identical per-quantum reports,
// lifecycle deltas, rank histories and final event registries to the
// full per-quantum rescan, with and without retention trimming.
func TestReconcileDirtyEquivalence(t *testing.T) {
	for _, retain := range []int{0, 4} {
		fullQ, fullFinal := runReconcileMode(t, reconcileForceFull, retain)
		dirtyQ, dirtyFinal := runReconcileMode(t, reconcileForceDirty, retain)
		autoQ, autoFinal := runReconcileMode(t, reconcileAuto, retain)
		if len(fullQ) == 0 {
			t.Fatal("trace produced no quanta")
		}
		if len(fullQ) != len(dirtyQ) || len(fullQ) != len(autoQ) {
			t.Fatalf("retain=%d: quantum counts diverge: full=%d dirty=%d auto=%d",
				retain, len(fullQ), len(dirtyQ), len(autoQ))
		}
		for i := range fullQ {
			if fullQ[i] != dirtyQ[i] {
				t.Fatalf("retain=%d: quantum %d diverges (full vs dirty):\nfull  %s\ndirty %s",
					retain, i, fullQ[i], dirtyQ[i])
			}
			if fullQ[i] != autoQ[i] {
				t.Fatalf("retain=%d: quantum %d diverges (full vs auto)", retain, i)
			}
		}
		if fullFinal != dirtyFinal || fullFinal != autoFinal {
			t.Fatalf("retain=%d: final event registries diverge", retain)
		}
	}
}

// TestReconcileDirtyEquivalenceAcrossCheckpoint replays the second half
// of a stream on a restored checkpoint under the forced-dirty path and
// requires the final registry to match an uninterrupted forced-full
// run — the dirty set must not depend on state a checkpoint cannot
// carry.
func TestReconcileDirtyEquivalenceAcrossCheckpoint(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.TWConfig(11, 12000))
	cfg := Config{Delta: 80, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 8}}

	ref := New(cfg)
	ref.reconcileMode = reconcileForceFull
	for _, m := range msgs {
		ref.IngestAll(m)
	}
	ref.Flush()
	want := mustJSON(t, ref.AllEvents())

	d1 := New(cfg)
	d1.reconcileMode = reconcileForceDirty
	cut := 6000 // mid-quantum on purpose
	for _, m := range msgs[:cut] {
		d1.IngestAll(m)
	}
	st := d1.State()
	d2, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	d2.reconcileMode = reconcileForceDirty
	for _, m := range msgs[cut:] {
		d2.IngestAll(m)
	}
	d2.Flush()
	if got := mustJSON(t, d2.AllEvents()); got != want {
		t.Fatalf("restored dirty-path run diverges from uninterrupted full-path run:\ngot  %s\nwant %s", got, want)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
