// Epoch snapshots: after every quantum the detector can materialize a
// compact, immutable view of its queryable state. Serving layers publish
// the view through an atomic pointer so queries (top-k, history, single
// event, related pairs, keyword lookup) are wait-free against the latest
// epoch instead of contending on the detector lock with ingest.
//
// The snapshot is built incrementally from what actually changed:
// finished events are immutable once they retire, so their views are
// cloned exactly once and cached across epochs (with an ID-sorted base
// slice reused verbatim by every epoch until the finished set changes);
// only the (small) live set is re-cloned each quantum. Per-quantum
// build cost is proportional to the live set, not the retained history.
package detect

import (
	"maps"
	"slices"
	"sort"
	"sync"

	"repro/internal/core"
)

// byIDAsc orders snapshot views by event ID without sort.Slice's
// closure/reflection cost — this runs on the per-quantum apply path.
func byIDAsc(a, b *Event) int {
	if a.ID < b.ID {
		return -1
	}
	if a.ID > b.ID {
		return 1
	}
	return 0
}

// Snapshot is an immutable view of the detector at one quantum boundary.
// Every reachable *Event is a deep copy owned by the snapshot; callers
// may read them from any goroutine for as long as they like, but must
// not mutate them (the finished-event views are shared across epochs).
type Snapshot struct {
	// Quantum is the epoch: the index of the last processed quantum.
	Quantum int
	// Processed / Trimmed mirror the detector's cumulative counters at
	// the epoch boundary.
	Processed uint64
	Trimmed   uint64
	// AKGNodes / AKGEdges size the active graph at the epoch boundary.
	AKGNodes int
	AKGEdges int
	// Born / Ended / Merged are the lifecycle deltas of the newest
	// quantum (empty on a freshly restored detector): enough for a
	// subscriber to catch up without diffing epochs.
	Born   []uint64
	Ended  []uint64
	Merged []MergeNote

	finSorted []*Event      // finished events, ID ascending (shared across epochs)
	live      []*Event      // live events, rank-descending (ties: ID)
	liveByID  []*Event      // the same live views, ID ascending
	related   []RelatedPair // live reported pairs, overlap-descending

	// keyword → live reported event IDs (ascending), built lazily on
	// the first keyword-filtered query: it is derivable from the
	// immutable live views alone, so deferring it keeps the per-quantum
	// publish step (which runs on the apply path for every epoch,
	// queried or not) free of the index build.
	keywordOnce sync.Once
	keyword     map[string][]uint64

	// Retained-event indexes for the unified query engine, also built
	// lazily from the immutable views: byLast orders every retained
	// event (live + finished) by (LastQuantum, ID) — the engine's
	// deterministic merge order — and allKw inverts the full keyword
	// history the same way the archive's Bloom sidecars do, so a query
	// matches identically whether an event is still retained or already
	// evicted.
	rangeOnce sync.Once
	byLast    []*Event
	allKwOnce sync.Once
	allKw     map[string][]*Event
}

// AllEvents returns every retained event in birth (ID) order, merged on
// demand from the finished base and the live overlay (finished IDs and
// live IDs never interleave-free — a live event can be older than a
// finished one — so this is a two-way merge). The result is freshly
// allocated; the events it points at are snapshot-owned and read-only.
func (s *Snapshot) AllEvents() []*Event {
	out := make([]*Event, 0, len(s.finSorted)+len(s.liveByID))
	i, j := 0, 0
	for i < len(s.finSorted) && j < len(s.liveByID) {
		if s.finSorted[i].ID < s.liveByID[j].ID {
			out = append(out, s.finSorted[i])
			i++
		} else {
			out = append(out, s.liveByID[j])
			j++
		}
	}
	out = append(out, s.finSorted[i:]...)
	out = append(out, s.liveByID[j:]...)
	return out
}

// TopK returns the k highest-ranked live reported events (k ≤ 0 = all),
// mirroring Detector.TopK.
func (s *Snapshot) TopK(k int) []*Event {
	out := make([]*Event, 0, len(s.live))
	for _, ev := range s.live {
		if !ev.Reported {
			continue
		}
		out = append(out, ev)
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// Find returns the retained event with the given ID, or nil — a binary
// search of the finished base, then of the live overlay.
func (s *Snapshot) Find(id uint64) *Event {
	if ev := findByID(s.finSorted, id); ev != nil {
		return ev
	}
	return findByID(s.liveByID, id)
}

func findByID(sorted []*Event, id uint64) *Event {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].ID >= id })
	if i < len(sorted) && sorted[i].ID == id {
		return sorted[i]
	}
	return nil
}

// LiveCount returns the number of live events (reported or not).
func (s *Snapshot) LiveCount() int { return len(s.live) }

// TotalCount returns the number of retained events (live + finished).
func (s *Snapshot) TotalCount() int { return len(s.finSorted) + len(s.live) }

// Related returns the live reported event pairs with user-community
// overlap ≥ minOverlap, mirroring Detector.RelatedEvents: the pairs were
// computed at the epoch boundary, so this is a wait-free filter of a
// precomputed overlap-descending list. Never nil.
func (s *Snapshot) Related(minOverlap float64) []RelatedPair {
	out := make([]RelatedPair, 0, len(s.related))
	for _, p := range s.related {
		if p.UserJaccard >= minOverlap {
			out = append(out, p)
		}
	}
	return out
}

// keywordIndex builds (once, thread-safely) and returns the inverted
// index over the live reported events' current keywords.
func (s *Snapshot) keywordIndex() map[string][]uint64 {
	s.keywordOnce.Do(func() {
		keyword := make(map[string][]uint64)
		for _, ev := range s.live {
			if !ev.Reported {
				continue
			}
			for _, kw := range ev.Keywords {
				keyword[kw] = append(keyword[kw], ev.ID)
			}
		}
		for kw := range keyword { //repro:order-insensitive per-key in-place sort; keys are independent
			slices.Sort(keyword[kw])
		}
		s.keyword = keyword
	})
	return s.keyword
}

// KeywordEventIDs returns the IDs (ascending) of live reported events
// whose current keyword set contains kw — the inverted-index lookup
// behind keyword-filtered event queries. The slice is shared with the
// snapshot: read-only.
func (s *Snapshot) KeywordEventIDs(kw string) []uint64 { return s.keywordIndex()[kw] }

// byLastAsc orders snapshot views by (LastQuantum, ID) — the unified
// query engine's deterministic merge order.
func byLastAsc(a, b *Event) int {
	if a.LastQuantum != b.LastQuantum {
		if a.LastQuantum < b.LastQuantum {
			return -1
		}
		return 1
	}
	return byIDAsc(a, b)
}

// rangeIndex builds (once, thread-safely) the (LastQuantum, ID)-ordered
// view of every retained event, live and finished alike.
func (s *Snapshot) rangeIndex() []*Event {
	s.rangeOnce.Do(func() {
		all := make([]*Event, 0, len(s.finSorted)+len(s.liveByID))
		all = append(all, s.finSorted...)
		all = append(all, s.liveByID...)
		slices.SortFunc(all, byLastAsc)
		s.byLast = all
	})
	return s.byLast
}

// EventsSinceQuantum returns every retained event (live + finished)
// whose LastQuantum is at least from, ordered by (LastQuantum, ID)
// ascending — the suffix of the retained-event time index a range query
// starts from. The slice is shared with the snapshot: read-only.
func (s *Snapshot) EventsSinceQuantum(from int) []*Event {
	idx := s.rangeIndex()
	i := sort.Search(len(idx), func(i int) bool { return idx[i].LastQuantum >= from })
	return idx[i:]
}

// keywordHistoryIndex builds (once, thread-safely) the inverted index
// over retained events' full keyword history: AllKeywords when present,
// else the current Keywords — the same matching rule the archive
// applies to its records, so unified queries agree across sources.
func (s *Snapshot) keywordHistoryIndex() map[string][]*Event {
	s.allKwOnce.Do(func() {
		m := make(map[string][]*Event)
		// rangeIndex is (LastQuantum, ID)-ordered, so each keyword's
		// list inherits that order without a per-list sort.
		for _, ev := range s.rangeIndex() {
			if len(ev.AllKeywords) > 0 {
				//repro:order-insensitive each keyword key is visited once per event; list order comes from the sorted outer event loop
				for kw := range ev.AllKeywords {
					m[kw] = append(m[kw], ev)
				}
			} else {
				for _, kw := range ev.Keywords {
					m[kw] = append(m[kw], ev)
				}
			}
		}
		s.allKw = m
	})
	return s.allKw
}

// EventsWithKeyword returns the retained events (live + finished) whose
// keyword history contains kw, ordered by (LastQuantum, ID) ascending.
// The slice is shared with the snapshot: read-only.
func (s *Snapshot) EventsWithKeyword(kw string) []*Event {
	return s.keywordHistoryIndex()[kw]
}

// TopKKeyword is TopK restricted to events whose current keyword set
// contains kw, resolved through the inverted index.
func (s *Snapshot) TopKKeyword(k int, kw string) []*Event {
	ids := s.keywordIndex()[kw]
	if len(ids) == 0 {
		return []*Event{}
	}
	member := make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		member[id] = struct{}{}
	}
	out := make([]*Event, 0, len(ids))
	for _, ev := range s.live {
		if _, ok := member[ev.ID]; !ok {
			continue
		}
		out = append(out, ev)
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// SetSnapshotRankHistory caps the RankHistory entries carried into
// subsequent Snapshot calls (keeping the newest n); n ≤ 0 keeps the full
// history. Rank history grows one entry per quantum per live event, so
// unbounded snapshots of a long-lived tenant would copy O(quanta) floats
// per epoch — the cap bounds snapshot size and build time. Like the
// hooks, the setting is not part of checkpoints.
func (d *Detector) SetSnapshotRankHistory(n int) { d.snapMaxHist = n }

// cloneEventView deep-copies ev for inclusion in a snapshot, truncating
// RankHistory to the newest maxHist entries when maxHist > 0.
// AllKeywords is cloned too: the unified query engine matches keywords
// against the full history (the archive's rule), so snapshot views must
// carry it for a query to return the same events before and after
// eviction. Finished views are cloned exactly once and cached, so the
// recurring cost is only the (small) live set's keyword maps per
// quantum.
func cloneEventView(ev *Event, maxHist int) *Event {
	cp := *ev
	cp.Keywords = append([]string(nil), ev.Keywords...)
	hist := ev.RankHistory
	if maxHist > 0 && len(hist) > maxHist {
		hist = hist[len(hist)-maxHist:]
	}
	cp.RankHistory = append([]float64(nil), hist...)
	cp.AllKeywords = maps.Clone(ev.AllKeywords)
	return &cp
}

// syncFinishedViews brings the cached finished-event views in line with
// d.finished: trimmed events fall off the front (matched by the
// cumulative trim counter), newly finished events are cloned once and
// appended. The ID-sorted base slice (what snapshots serve from) is
// rebuilt only when the finished set actually changed; on the common
// quantum where nothing finishes, every epoch shares the same base and
// the sync costs nothing. Published snapshots reference the base slice
// by value, so the rebuild (a fresh allocation) never mutates an
// already-published epoch.
func (d *Detector) syncFinishedViews() {
	changed := false
	if delta := d.trimmed - d.snapFinTrimmed; delta > 0 {
		if int(delta) >= len(d.snapFin) {
			d.snapFin = d.snapFin[:0]
		} else {
			d.snapFin = append(d.snapFin[:0:0], d.snapFin[delta:]...)
		}
		d.snapFinTrimmed = d.trimmed
		changed = true
	}
	for i := len(d.snapFin); i < len(d.finished); i++ {
		d.snapFin = append(d.snapFin, cloneEventView(d.finished[i], d.snapMaxHist))
		changed = true
	}
	if changed || (d.snapFinSorted == nil && len(d.snapFin) > 0) {
		d.snapFinSorted = append([]*Event(nil), d.snapFin...)
		slices.SortFunc(d.snapFinSorted, byIDAsc)
	}
}

// Snapshot materializes the immutable epoch view of the detector's
// queryable state. res, when non-nil, is the QuantumResult that closed
// the epoch and supplies the lifecycle deltas (pass nil after a restore,
// where there is no delta to report). Like every other Detector method
// it must not race with ingest: callers serialise it on whichever
// goroutine applies quanta.
func (d *Detector) Snapshot(res *QuantumResult) *Snapshot {
	d.syncFinishedViews()

	// Live views, cloned fresh each epoch in cluster-ID order (every live
	// event's rank and history changed this quantum anyway).
	cids := make([]core.ClusterID, 0, len(d.events))
	for cid := range d.events {
		cids = append(cids, cid)
	}
	slices.Sort(cids)
	live := make([]*Event, 0, len(cids))
	for _, cid := range cids {
		live = append(live, cloneEventView(d.events[cid], d.snapMaxHist))
	}

	// Two orderings of the (small) live overlay: by ID for history
	// merges and lookups, by rank for the top-k view.
	liveByID := append([]*Event(nil), live...)
	slices.SortFunc(liveByID, byIDAsc)
	slices.SortFunc(live, func(a, b *Event) int {
		if a.Rank != b.Rank {
			if a.Rank > b.Rank {
				return -1
			}
			return 1
		}
		return byIDAsc(a, b)
	})

	s := &Snapshot{
		Quantum:   d.akg.Quantum(),
		Processed: d.processed,
		Trimmed:   d.trimmed,
		AKGNodes:  d.akg.NodeCount(),
		AKGEdges:  d.akg.EdgeCount(),
		finSorted: d.snapFinSorted,
		live:      live,
		liveByID:  liveByID,
		related:   d.RelatedEvents(0),
	}
	if res != nil {
		s.Born = res.Born
		s.Ended = res.Ended
		s.Merged = res.Merged
	}
	return s
}
