package detect

import (
	"testing"

	"repro/internal/akg"
	"repro/internal/stream"
)

func TestSynonymPreprocessing(t *testing.T) {
	cfg := testConfig(8)
	cfg.Synonyms = map[string]string{"quake": "earthquake", "tremor": "earthquake"}
	d := New(cfg)
	// Half the users say "quake", half "earthquake": without synonym
	// folding the burstiness splits across two nodes.
	var msgs []stream.Message
	for i := 0; i < 4; i++ {
		msgs = append(msgs, stream.Message{
			ID: uint64(i + 1), User: uint64(i + 1), Time: int64(i),
			Text: "quake struck turkey",
		})
	}
	for i := 4; i < 8; i++ {
		msgs = append(msgs, stream.Message{
			ID: uint64(i + 1), User: uint64(i + 1), Time: int64(i),
			Text: "earthquake struck turkey",
		})
	}
	res := runAll(t, d, msgs)
	last := res[len(res)-1]
	if len(last.Reports) != 1 {
		t.Fatalf("want one merged event, got %d", len(last.Reports))
	}
	for _, kw := range last.Reports[0].Keywords {
		if kw == "quake" {
			t.Fatalf("synonym not folded: %v", last.Reports[0].Keywords)
		}
	}
	if _, ok := d.Interner().Lookup("earthquake"); !ok {
		t.Fatalf("canonical keyword missing")
	}
}

func TestRelatedEvents(t *testing.T) {
	cfg := Config{Delta: 10, AKG: akg.Config{Tau: 3, Beta: 0.2, Window: 4}}
	d := New(cfg)
	// The same five users discuss the same happening with two disjoint
	// vocabularies in consecutive quanta (as if switching languages): the
	// keyword sets never co-occur within a quantum, so two separate
	// clusters form — but they share their user community entirely.
	var msgs []stream.Message
	id := uint64(0)
	for i := 0; i < 10; i++ { // quantum 1: German vocabulary
		id++
		msgs = append(msgs, stream.Message{
			ID: id, User: uint64(i%5 + 1), Time: int64(id),
			Text: "erdbeben osttuerkei beben",
		})
	}
	for i := 0; i < 10; i++ { // quantum 2: English vocabulary
		id++
		msgs = append(msgs, stream.Message{
			ID: id, User: uint64(i%5 + 1), Time: int64(id),
			Text: "earthquake turkey tremor",
		})
	}
	runAll(t, d, msgs)
	if len(d.LiveEvents()) < 2 {
		t.Fatalf("setup: want two clusters, got %d", len(d.LiveEvents()))
	}
	pairs := d.RelatedEvents(0.8)
	if len(pairs) != 1 {
		t.Fatalf("want one related pair, got %d", len(pairs))
	}
	if pairs[0].UserJaccard != 1.0 {
		t.Fatalf("identical communities should have Jaccard 1, got %v", pairs[0].UserJaccard)
	}
	if pairs[0].A >= pairs[0].B {
		t.Fatalf("pair ordering wrong: %+v", pairs[0])
	}
	// Disjoint communities must not correlate.
	if got := d.RelatedEvents(1.01); len(got) != 0 {
		t.Fatalf("threshold above 1 should match nothing")
	}
}

func TestSpuriousEventsAccessor(t *testing.T) {
	cfg := testConfig(6)
	cfg.AKG.Window = 2
	d := New(cfg)
	var msgs []stream.Message
	// A one-quantum burst, then quiet chatter so rank decays to death.
	msgs = append(msgs, burstMessages(0, 6, "promo deal sale")...)
	for q := 0; q < 4; q++ {
		msgs = append(msgs, burstMessages(100+10*q, 6, "weather sunny")...)
	}
	runAll(t, d, msgs)
	sp := d.SpuriousEvents()
	found := false
	for _, ev := range sp {
		for _, kw := range ev.Keywords {
			if kw == "promo" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("burst event not in SpuriousEvents; got %d entries", len(sp))
	}
}

func TestTopK(t *testing.T) {
	cfg := testConfig(5)
	d := New(cfg)
	var msgs []stream.Message
	msgs = append(msgs, burstMessages(0, 5, "fire downtown harbor")...)
	msgs = append(msgs, burstMessages(100, 5, "storm coast warning")...)
	runAll(t, d, msgs)
	all := d.TopK(0)
	if len(all) != 2 {
		t.Fatalf("TopK(0) = %d events", len(all))
	}
	top1 := d.TopK(1)
	if len(top1) != 1 {
		t.Fatalf("TopK(1) = %d events", len(top1))
	}
	if top1[0].Rank < all[1].Rank {
		t.Fatalf("TopK not rank-ordered")
	}
}
