// Package detect is the end-to-end pipeline: a message stream is cut into
// quanta, tokenized, fed to the AKG layer (which drives the SCP cluster
// engine), and the resulting clusters are tracked as ranked events over
// their whole lifecycle — birth, evolution, merge, split, death — with the
// paper's spurious-event filters applied at reporting time.
package detect

import (
	"bytes"
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/akg"
	"repro/internal/ckg"
	"repro/internal/core"
	"repro/internal/dygraph"
	"repro/internal/quasi"
	"repro/internal/rank"
	"repro/internal/stream"
	"repro/internal/textproc"
)

// Config configures a Detector. Zero fields take the paper's Table 2
// nominal values.
type Config struct {
	// Delta is the quantum size in messages (Table 2 nominal: 160).
	// Ignored when QuantumTime is set.
	Delta int
	// QuantumTime, when positive, cuts quanta by Message.Time duration
	// instead of message count — the paper's original "unit time"
	// quantum definition (Section 1.1). Stream gaps then produce empty
	// quanta, so the sliding window keeps expiring stale keywords
	// through silence.
	QuantumTime int64
	// AKG holds the graph-layer thresholds (τ, β, w, p).
	AKG akg.Config
	// SpuriousFactor scales the minimum-rank cutoff for reporting: an
	// event is reported only if its rank ≥ SpuriousFactor ×
	// rank.MinScore(n, τ, β) (Section 7.2.2 filter 1). Default 1.0.
	SpuriousFactor float64
	// RequireNoun filters out clusters with no likely-noun keyword
	// (Section 7.2.2 filter 2). Default true; set DisableNounFilter to
	// turn off.
	DisableNounFilter bool
	// TrackCKG additionally maintains the full CKG so the AKG size
	// reduction can be measured (Section 7.4). Costs memory and time.
	TrackCKG bool
	// Synonyms maps keyword variants to a canonical form before graph
	// construction — the dictionary/thesaurus pre-processing Section 1.1
	// suggests for merging clusters split by synonymous or multilingual
	// vocabulary ("quake" → "earthquake"). Values are used as-is; keys
	// and values must be lower case.
	Synonyms map[string]string
}

func (c Config) withDefaults() Config {
	if c.Delta <= 0 {
		c.Delta = 160
	}
	if c.SpuriousFactor <= 0 {
		c.SpuriousFactor = 1.0
	}
	return c
}

// EventState describes where an event is in its lifecycle.
type EventState int

// Event lifecycle states.
const (
	EventLive EventState = iota
	EventMerged
	EventEnded
)

func (s EventState) String() string {
	switch s {
	case EventLive:
		return "live"
	case EventMerged:
		return "merged"
	case EventEnded:
		return "ended"
	}
	return fmt.Sprintf("EventState(%d)", int(s))
}

// Event is the tracked lifecycle of one cluster.
type Event struct {
	ID        uint64
	ClusterID core.ClusterID
	// BornQuantum is the quantum at which the cluster first appeared.
	BornQuantum int
	// LastQuantum is the most recent quantum the event was alive.
	LastQuantum int
	// Keywords is the current (or final) keyword set, sorted.
	Keywords []string
	// Rank is the most recent rank score.
	Rank float64
	// RankHistory records the rank at each quantum since birth.
	RankHistory []float64
	// PeakRank is the maximum rank ever attained.
	PeakRank float64
	// Evolved reports whether the keyword set ever changed after birth —
	// real events evolve; spurious bursts do not (Section 7.2.2).
	Evolved bool
	// MergedInto is the event ID that absorbed this one (state Merged).
	MergedInto uint64
	// SplitFrom is the event ID this one split off from, if any.
	SplitFrom uint64
	// State is the lifecycle state.
	State EventState
	// Support is the most recent union user support of the keywords.
	Support int
	// Size is the most recent cluster node count.
	Size int
	// Reported records whether the event ever passed the reporting
	// filters, and FirstReported the quantum at which it first did —
	// the basis for the detection-latency measurements of Section 7.1.
	Reported      bool
	FirstReported int
	// AllKeywords accumulates every keyword that was ever part of the
	// event, so evaluation can match evolved events against ground truth.
	AllKeywords map[string]struct{}
	// ExactMQC reports whether the cluster currently satisfies the strict
	// majority-quasi-clique degree condition, the O(N²) refinement check
	// of Section 4.2. SCP clusters are aMQCs; this flag identifies the
	// subset that are exact MQCs (informational — the paper argues MQC
	// membership is deliberately not enforced in a dynamic graph).
	ExactMQC bool
}

// Spurious applies the post-hoc rule from Section 7.2.2: never-evolving
// events with monotonically decreasing rank are spurious.
func (e *Event) Spurious() bool {
	return rank.Spurious(e.RankHistory, e.Evolved)
}

// Report is the per-quantum snapshot of a reportable event. The JSON
// tags are the wire shape of the serving subsystem's SSE stream.
type Report struct {
	EventID  uint64   `json:"event_id"`
	Quantum  int      `json:"quantum"`
	Keywords []string `json:"keywords"`
	Rank     float64  `json:"rank"`
	Size     int      `json:"size"`
	Support  int      `json:"support"`
	Born     int      `json:"born"`
	Evolved  bool     `json:"evolved"`
}

// MergeNote records one event absorbed by another during a quantum. Into
// is zero when the surviving cluster had no tracked event.
type MergeNote struct {
	Event uint64 `json:"event"`
	Into  uint64 `json:"into"`
}

// QuantumResult summarises one processed quantum.
type QuantumResult struct {
	Quantum  int
	Stats    akg.QuantumStats
	Reports  []Report // reportable events, rank-descending
	CKGNodes int      // only when TrackCKG
	CKGEdges int
	AKGNodes int
	AKGEdges int
	// Lifecycle deltas observed this quantum: IDs of events born, of
	// events that died (cluster dissolved), and of events merged away
	// with their surviving event. Serving layers use these to push
	// born/evolve/merge/die notifications without diffing snapshots.
	Born   []uint64
	Ended  []uint64
	Merged []MergeNote
	// Elapsed is the wall time spent processing this quantum (graph
	// maintenance + event reconciliation; excludes the caller's IO).
	Elapsed time.Duration
	// PrepElapsed / GraphElapsed / ReconcileElapsed split the quantum's
	// processing into the pipeline's sub-phases for the serving layer's
	// stage histograms: tokenization plus vocabulary interning, AKG/CKG
	// graph and dense-cluster maintenance, and dirty-set event
	// reconciliation. PrepElapsed is not part of Elapsed — tokenization
	// may run on a pipeline worker (see RunParallel) while Elapsed
	// times only the serial apply step.
	PrepElapsed      time.Duration
	GraphElapsed     time.Duration
	ReconcileElapsed time.Duration
}

// Detector is the streaming event discovery pipeline. Not safe for
// concurrent use.
type Detector struct {
	cfg       Config
	interner  *textproc.Interner
	akg       *akg.AKG
	quant     *stream.Quantizer
	tquant    *stream.TimeQuantizer // non-nil when cfg.QuantumTime > 0
	ckg       *ckg.Graph
	nounSeen  map[dygraph.NodeID]bool
	events    map[core.ClusterID]*Event
	finished  []*Event
	nextEvent uint64
	processed uint64 // total messages ingested
	trimmed   uint64 // total finished events ever evicted by TrimFinished

	// lifecycle notes collected from engine hooks during a quantum
	mergedInto map[core.ClusterID]core.ClusterID
	splitFrom  map[core.ClusterID]core.ClusterID

	// onQuantum, when set, is called with every QuantumResult the
	// detector produces, on whichever goroutine applies quanta.
	onQuantum func(*QuantumResult)
	// onEvict, when set, is called with each finished event dropped by
	// TrimFinished, in eviction order (oldest first). Serving layers use
	// it to archive history instead of losing it.
	onEvict func(*Event)

	// Incremental epoch-snapshot builder state (see snapshot.go): cached
	// immutable views of d.finished (eviction order), the same views
	// ID-sorted (the base slice snapshots share until the finished set
	// changes), the trim counter they are synced to, and the rank-history
	// cap applied to snapshot views.
	snapFin        []*Event
	snapFinSorted  []*Event
	snapFinTrimmed uint64
	snapMaxHist    int

	// reconcileMode pins the dirty-set reconciliation path for the
	// equivalence tests: 0 auto (dirty path with full-pass fallback when
	// most clusters are dirty), 1 always full, 2 always dirty. Both
	// paths produce bit-identical results; the mode only moves work.
	reconcileMode int

	// Ingest-pipeline scratch, reused across quanta: the serial path's
	// prepared quantum (RunParallel workers carry their own), and the
	// interned per-user keyword arena.
	prep       prepared
	kwArena    []dygraph.NodeID
	uksScratch []ckg.UserKeywords

	// Reconciliation scratch, reused across quanta.
	retiredScratch []core.ClusterID
	cidScratch     []core.ClusterID
	nodeScratch    []dygraph.NodeID
	edgeScratch    []dygraph.Edge
	kwScratch      []string
	degScratch     map[dygraph.NodeID]int
	rankWeight     rank.Weights
	rankCorr       rank.Correlations
}

// New returns a Detector with the given configuration.
func New(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:        cfg,
		interner:   textproc.NewInterner(),
		nounSeen:   make(map[dygraph.NodeID]bool),
		events:     make(map[core.ClusterID]*Event),
		mergedInto: make(map[core.ClusterID]core.ClusterID),
		splitFrom:  make(map[core.ClusterID]core.ClusterID),
	}
	if cfg.QuantumTime > 0 {
		d.tquant = stream.NewTimeQuantizer(cfg.QuantumTime)
	} else {
		d.quant = stream.NewQuantizer(cfg.Delta)
	}
	hooks := core.Hooks{
		OnMerged: func(into *core.Cluster, absorbed core.ClusterID) {
			d.mergedInto[absorbed] = into.ID()
		},
		OnSplit: func(from core.ClusterID, parts []*core.Cluster) {
			for _, p := range parts[1:] {
				d.splitFrom[p.ID()] = from
			}
		},
	}
	d.akg = akg.New(cfg.AKG, hooks)
	if cfg.TrackCKG {
		d.ckg = ckg.New(d.akg.Config().Window)
	}
	return d
}

// SetOnQuantum registers fn to be pushed every QuantumResult the detector
// produces, whatever the entry point (Ingest, Run, RunParallel, Flush).
// Serving layers use it for push notification; nil clears the hook. The
// hook is not part of checkpoints — re-register after Load.
func (d *Detector) SetOnQuantum(fn func(*QuantumResult)) { d.onQuantum = fn }

// SetOnEvict registers fn to be called with every finished event dropped
// by TrimFinished, in eviction order. During the callback Trimmed()
// already counts the event being evicted, so fn can use it as the
// event's 1-based eviction ordinal — the basis for exactly-once archival
// across WAL replays. Like SetOnQuantum, the hook is not part of
// checkpoints — re-register after Load. nil clears it.
func (d *Detector) SetOnEvict(fn func(*Event)) { d.onEvict = fn }

// Trimmed returns the cumulative count of finished events ever evicted
// by TrimFinished. It survives checkpoint/restore, so a replayed stream
// re-evicts events at exactly the same ordinals.
func (d *Detector) Trimmed() uint64 { return d.trimmed }

// Interner exposes the keyword interner (read-only use by harnesses).
func (d *Detector) Interner() *textproc.Interner { return d.interner }

// AKG exposes the graph layer (read-only use by harnesses).
func (d *Detector) AKG() *akg.AKG { return d.akg }

// Processed returns the number of messages ingested so far.
func (d *Detector) Processed() uint64 { return d.processed }

// NounSeen reports whether the interned keyword was ever observed in a
// noun-like shape. Exposed so alternative clustering schemes (the offline
// baselines of Section 7.3) can apply the same reporting filters.
func (d *Detector) NounSeen(n dygraph.NodeID) bool { return d.nounSeen[n] }

// Ingest feeds one message. When the message completes a quantum the
// quantum is processed and its result returned; otherwise result is nil.
// Under time-based quanta one message can close several quanta (gaps in
// the stream); Ingest then returns the last result — use IngestAll or Run
// to observe every quantum.
func (d *Detector) Ingest(m stream.Message) *QuantumResult {
	results := d.IngestAll(m)
	if len(results) == 0 {
		return nil
	}
	return results[len(results)-1]
}

// IngestAll feeds one message and returns every quantum it completed
// (empty under message-count quantization except at boundaries).
func (d *Detector) IngestAll(m stream.Message) []*QuantumResult {
	d.processed++
	if d.tquant != nil {
		var out []*QuantumResult
		for _, batch := range d.tquant.Add(m) {
			res := d.processQuantum(batch)
			out = append(out, &res)
		}
		return out
	}
	batch := d.quant.Add(m)
	if batch == nil {
		return nil
	}
	res := d.processQuantum(batch)
	return []*QuantumResult{&res}
}

// Flush processes any buffered partial quantum (end of stream). Returns
// nil if the buffer was empty.
func (d *Detector) Flush() *QuantumResult {
	var batch []stream.Message
	if d.tquant != nil {
		batch = d.tquant.Flush()
	} else {
		batch = d.quant.Flush()
	}
	if len(batch) == 0 {
		return nil
	}
	res := d.processQuantum(batch)
	return &res
}

// Run drains a source, invoking onQuantum (if non-nil) for every processed
// quantum including the final partial one.
func (d *Detector) Run(src stream.Source, onQuantum func(*QuantumResult)) error {
	for {
		m, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, res := range d.IngestAll(m) {
			if onQuantum != nil {
				onQuantum(res)
			}
		}
	}
	if res := d.Flush(); res != nil && onQuantum != nil {
		onQuantum(res)
	}
	return nil
}

// prepared is one quantum's tokenized, synonym-folded, per-user grouped
// vocabulary, before interning: every canonical keyword's bytes live in
// one arena and users reference them by offset, so the whole structure
// is reused across quanta without per-message slice/string churn.
// Computing it needs no detector state beyond the (read-only) synonym
// table, so preparation can run on worker goroutines (RunParallel),
// each with its own prepared scratch.
type prepared struct {
	tk     textproc.Tokenizer
	arena  []byte // canonical keyword bytes for the whole quantum
	users  []prepUser
	byUser map[uint64]int32
	synBuf []byte // canonical form of the current token, when substituted
	// prepDur is the wall time prepareQuantumInto spent, carried into
	// the QuantumResult so sub-phase timing survives the prepare/apply
	// split of the parallel pipeline.
	prepDur time.Duration
}

// prepUser is one user's distinct canonical keywords (arena offsets),
// sorted lexicographically after prepare.
type prepUser struct {
	user uint64
	refs []wordRef
}

type wordRef struct {
	off, end int32
	nounish  bool // ever seen in noun shape this quantum (any message)
}

// prepareQuantumInto tokenizes a quantum and groups keywords per user
// into p, reusing all of p's storage. Pure with respect to detector
// state (Synonyms is read-only), deterministic: users ascending, each
// user's distinct keywords sorted lexicographically — exactly the
// interning order of the original string-based pipeline.
func (d *Detector) prepareQuantumInto(p *prepared, batch []stream.Message) {
	prepStart := time.Now() //repro:wallclock-exempt stage-latency telemetry; reported in QuantumResult, never in replayed state
	defer func() { p.prepDur = time.Since(prepStart) }()
	p.arena = p.arena[:0]
	p.users = p.users[:0]
	if p.byUser == nil {
		p.byUser = make(map[uint64]int32)
	} else {
		clear(p.byUser)
	}
	for _, m := range batch {
		toks := p.tk.Tokenize(m.Text)
		if len(toks) == 0 {
			continue
		}
		ui, ok := p.byUser[m.User]
		if !ok {
			if len(p.users) < cap(p.users) {
				p.users = p.users[:len(p.users)+1] // revive the old element's refs capacity
			} else {
				p.users = append(p.users, prepUser{})
			}
			ui = int32(len(p.users) - 1)
			pu := &p.users[ui]
			pu.user = m.User
			pu.refs = pu.refs[:0]
			p.byUser[m.User] = ui
		}
		pu := &p.users[ui]
		for _, t := range toks {
			text := t.Text
			if canon, ok := d.cfg.Synonyms[string(text)]; ok {
				p.synBuf = append(p.synBuf[:0], canon...)
				text = p.synBuf
			}
			// Noun shape is judged on the canonical text with the
			// original occurrence's flags, and OR-ed across this user's
			// occurrences — both as before.
			nounish := textproc.LikelyNounRaw(textproc.RawToken{
				Text:        text,
				Capitalized: t.Capitalized,
				Hashtag:     t.Hashtag,
				Numeric:     t.Numeric,
			})
			dup := false
			for ri := range pu.refs {
				rf := &pu.refs[ri]
				if bytes.Equal(p.arena[rf.off:rf.end], text) {
					if nounish {
						rf.nounish = true
					}
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			off := int32(len(p.arena))
			p.arena = append(p.arena, text...)
			pu.refs = append(pu.refs, wordRef{off: off, end: int32(len(p.arena)), nounish: nounish})
		}
	}
	slices.SortFunc(p.users, func(a, b prepUser) int {
		switch {
		case a.user < b.user:
			return -1
		case a.user > b.user:
			return 1
		}
		return 0
	})
	arena := p.arena
	for ui := range p.users {
		pu := &p.users[ui]
		slices.SortFunc(pu.refs, func(a, b wordRef) int {
			return bytes.Compare(arena[a.off:a.end], arena[b.off:b.end])
		})
	}
}

// processQuantum runs both pipeline stages serially, on the detector's
// own prepared scratch.
func (d *Detector) processQuantum(batch []stream.Message) QuantumResult {
	d.prepareQuantumInto(&d.prep, batch)
	return d.applyQuantum(&d.prep)
}

// applyQuantum interns the prepared vocabulary, updates the graph layers
// and reconciles the event registry. Single-threaded (detector state).
// The interner makes the only retained allocations (first-sight words);
// the per-user keyword lists are carved from a reused arena.
func (d *Detector) applyQuantum(prep *prepared) QuantumResult {
	started := time.Now() //repro:wallclock-exempt stage-latency telemetry; reported in QuantumResult, never in replayed state
	total := 0
	for ui := range prep.users {
		total += len(prep.users[ui].refs)
	}
	if cap(d.kwArena) < total {
		d.kwArena = make([]dygraph.NodeID, 0, total)
	}
	kwArena := d.kwArena[:0]
	uks := d.uksScratch[:0]
	for ui := range prep.users {
		pu := &prep.users[ui]
		start := len(kwArena)
		for _, rf := range pu.refs {
			id := d.interner.InternBytes(prep.arena[rf.off:rf.end])
			if rf.nounish && !d.nounSeen[id] {
				d.nounSeen[id] = true
			}
			kwArena = append(kwArena, id)
		}
		// Distinct canonical words intern to distinct IDs, so the refs
		// are already duplicate-free; sort by ID for the graph layers.
		kws := kwArena[start:len(kwArena):len(kwArena)]
		dygraph.SortNodes(kws)
		uks = append(uks, ckg.UserKeywords{User: pu.user, Keywords: kws})
	}
	d.kwArena = kwArena
	d.uksScratch = uks
	internDone := time.Now() //repro:wallclock-exempt stage-latency telemetry; reported in QuantumResult, never in replayed state

	if d.ckg != nil {
		d.ckg.AddQuantum(uks)
	}
	stats := d.akg.ProcessQuantum(uks)
	graphDone := time.Now() //repro:wallclock-exempt stage-latency telemetry; reported in QuantumResult, never in replayed state

	res := QuantumResult{
		Quantum: stats.Quantum,
		Stats:   stats,
	}
	d.reconcileEvents(&res)
	res.ReconcileElapsed = time.Since(graphDone) //repro:wallclock-exempt stage-latency telemetry; reported in QuantumResult, never in replayed state
	res.AKGNodes = d.akg.NodeCount()
	res.AKGEdges = d.akg.EdgeCount()
	if d.ckg != nil {
		res.CKGNodes = d.ckg.NodeCount()
		res.CKGEdges = d.ckg.EdgeCount()
	}
	res.PrepElapsed = prep.prepDur + internDone.Sub(started)
	res.GraphElapsed = graphDone.Sub(internDone)
	res.Elapsed = time.Since(started) //repro:wallclock-exempt stage-latency telemetry; reported in QuantumResult, never in replayed state
	if d.onQuantum != nil {
		d.onQuantum(&res)
	}
	return res
}

// Reconciliation path selectors (reconcileMode); tests force one path
// to prove both produce bit-identical output.
const (
	reconcileAuto = iota
	reconcileForceFull
	reconcileForceDirty
)

// reconcileEvents aligns the event registry with the engine's live
// clusters after a quantum, filling res.Reports (the reportable snapshot,
// rank-descending) and the lifecycle deltas.
//
// Maintenance is incremental: only dirty clusters — those the engine
// structurally touched this quantum plus those containing a vertex
// whose windowed support changed — have their rank, keywords, support
// and MQC status recomputed. A clean cluster's inputs are untouched by
// construction (supports frozen, edge weights frozen, membership
// frozen), so its event carries the previous values forward: same
// rank appended to the history, same reportability decision. When the
// dirty fraction exceeds half the live clusters the loop degrades to
// the full pass, which skips the per-cluster set probe; both paths are
// bit-identical (tested), the fallback only moves work.
func (d *Detector) reconcileEvents(res *QuantumResult) {
	quantum := res.Quantum
	eng := d.akg.Engine()

	// Dirty clusters: structural churn (engine touched set) ∪ clusters
	// of support-dirty vertices (AKG window slide + observations).
	dirty := eng.TouchedClusters()
	for _, n := range d.akg.DirtyNodes() {
		eng.ForEachClusterOf(n, func(id core.ClusterID) { dirty[id] = struct{}{} })
	}
	full := len(dirty)*2 >= eng.ClusterCount()
	switch d.reconcileMode {
	case reconcileForceFull:
		full = true
	case reconcileForceDirty:
		full = false
	}

	// Retire events whose cluster no longer exists, in cluster-ID order:
	// the order events enter d.finished is the order TrimFinished later
	// evicts them, and WAL replay needs that order to be identical run to
	// run (map iteration order is not).
	retired := d.retiredScratch[:0]
	for cid := range d.events { //repro:order-insensitive conditional collect; retired is sorted before any event is touched
		if eng.Cluster(cid) == nil {
			retired = append(retired, cid)
		}
	}
	slices.Sort(retired)
	d.retiredScratch = retired
	for _, cid := range retired {
		ev := d.events[cid]
		if into, merged := d.mergedInto[cid]; merged {
			ev.State = EventMerged
			// The surviving cluster's event absorbs this one.
			final := into
			for {
				next, ok := d.mergedInto[final]
				if !ok {
					break
				}
				final = next
			}
			if surv, ok := d.events[final]; ok {
				ev.MergedInto = surv.ID
			}
			res.Merged = append(res.Merged, MergeNote{Event: ev.ID, Into: ev.MergedInto})
		} else {
			ev.State = EventEnded
			res.Ended = append(res.Ended, ev.ID)
		}
		d.finished = append(d.finished, ev)
		delete(d.events, cid)
	}
	// Deltas carry event IDs, not cluster IDs; sort them so the wire
	// shape is deterministic run to run.
	slices.Sort(res.Ended)
	slices.SortFunc(res.Merged, func(a, b MergeNote) int {
		switch {
		case a.Event < b.Event:
			return -1
		case a.Event > b.Event:
			return 1
		}
		return 0
	})

	if d.rankWeight == nil {
		d.rankWeight = func(n dygraph.NodeID) float64 { return float64(d.akg.Support(n)) }
		d.rankCorr = func(a, b dygraph.NodeID) float64 {
			w, _ := d.akg.Engine().Graph().Weight(a, b)
			return w
		}
	}
	if d.degScratch == nil {
		d.degScratch = make(map[dygraph.NodeID]int)
	}

	// Create or update events for live clusters, in cluster-ID order so
	// fresh event IDs are assigned deterministically (cluster IDs are
	// themselves deterministic; see the engine's absorb/repair rules).
	liveIDs := eng.AppendClusterIDs(d.cidScratch[:0])
	slices.Sort(liveIDs)
	d.cidScratch = liveIDs
	res.Reports = make([]Report, 0, len(liveIDs))
	for _, cid := range liveIDs {
		c := eng.Cluster(cid)
		ev, ok := d.events[cid]
		if ok && !full {
			if _, isDirty := dirty[cid]; !isDirty {
				// Clean cluster: every rank input is frozen, so the event
				// repeats last quantum's values. Only the per-quantum
				// bookkeeping runs; reportability is re-derived from the
				// same inputs (cheap — a rank compare and a noun scan) so
				// no cached decision needs to survive checkpoints.
				ev.RankHistory = append(ev.RankHistory, ev.Rank)
				ev.LastQuantum = quantum
				if d.reportable(ev, c) {
					if !ev.Reported {
						ev.Reported = true
						ev.FirstReported = quantum
					}
					res.Reports = append(res.Reports, Report{
						EventID:  ev.ID,
						Quantum:  quantum,
						Keywords: ev.Keywords,
						Rank:     ev.Rank,
						Size:     ev.Size,
						Support:  ev.Support,
						Born:     ev.BornQuantum,
						Evolved:  ev.Evolved,
					})
				}
				continue
			}
		}
		nodes := c.AppendNodes(d.nodeScratch[:0])
		d.nodeScratch = nodes
		keywords := d.kwScratch[:0]
		for _, n := range nodes {
			keywords = append(keywords, d.interner.Word(n))
		}
		slices.Sort(keywords)
		d.kwScratch = keywords
		if !ok {
			d.nextEvent++
			ev = &Event{
				ID:          d.nextEvent,
				ClusterID:   cid,
				BornQuantum: quantum,
				Keywords:    append([]string(nil), keywords...),
				AllKeywords: make(map[string]struct{}, len(keywords)),
			}
			if from, ok := d.splitFrom[cid]; ok {
				if parent, ok := d.events[from]; ok {
					ev.SplitFrom = parent.ID
				}
			}
			d.events[cid] = ev
			res.Born = append(res.Born, ev.ID)
			for _, kw := range ev.Keywords {
				ev.AllKeywords[kw] = struct{}{}
			}
		} else if !sameStrings(ev.Keywords, keywords) {
			ev.Evolved = true
			ev.Keywords = append([]string(nil), keywords...)
			for _, kw := range ev.Keywords {
				ev.AllKeywords[kw] = struct{}{}
			}
		}
		edges := c.AppendEdges(d.edgeScratch[:0])
		d.edgeScratch = edges
		score := rank.ScoreParts(nodes, edges, d.rankWeight, d.rankCorr)
		ev.Rank = score
		ev.RankHistory = append(ev.RankHistory, score)
		if score > ev.PeakRank {
			ev.PeakRank = score
		}
		ev.LastQuantum = quantum
		ev.Size = c.NodeCount()
		ev.Support = d.akg.UnionSupport(nodes)
		ev.ExactMQC = quasi.IsMQCEdges(edges, d.degScratch)

		if d.reportable(ev, c) {
			if !ev.Reported {
				ev.Reported = true
				ev.FirstReported = quantum
			}
			res.Reports = append(res.Reports, Report{
				EventID:  ev.ID,
				Quantum:  quantum,
				Keywords: ev.Keywords,
				Rank:     ev.Rank,
				Size:     ev.Size,
				Support:  ev.Support,
				Born:     ev.BornQuantum,
				Evolved:  ev.Evolved,
			})
		}
	}
	slices.SortFunc(res.Reports, func(a, b Report) int {
		switch {
		case a.Rank > b.Rank:
			return -1
		case a.Rank < b.Rank:
			return 1
		case a.EventID < b.EventID:
			return -1
		case a.EventID > b.EventID:
			return 1
		}
		return 0
	})

	// Lifecycle notes were consumed; reset for the next quantum.
	clear(d.mergedInto)
	clear(d.splitFrom)
}

// reportable applies the Section 7.2.2 reporting filters.
func (d *Detector) reportable(ev *Event, c *core.Cluster) bool {
	cfg := d.akg.Config()
	minScore := rank.MinScore(c.NodeCount(), cfg.Tau, cfg.Beta)
	if ev.Rank < d.cfg.SpuriousFactor*minScore {
		return false
	}
	if !d.cfg.DisableNounFilter {
		hasNoun := false
		c.ForEachNode(func(n dygraph.NodeID) {
			if d.nounSeen[n] {
				hasNoun = true
			}
		})
		if !hasNoun {
			return false
		}
	}
	return true
}

// LiveEvents returns the currently live events sorted by rank descending.
func (d *Detector) LiveEvents() []*Event {
	out := make([]*Event, 0, len(d.events))
	for _, ev := range d.events {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank > out[j].Rank
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// LiveCount returns the number of live events without copying them.
func (d *Detector) LiveCount() int { return len(d.events) }

// TotalCount returns the number of currently retained events (live +
// finished) without copying them. Not monotonic once TrimFinished is in
// use — trimmed events no longer count.
func (d *Detector) TotalCount() int { return len(d.events) + len(d.finished) }

// FindEvent returns the tracked event with the given ID, live or
// finished, or nil. A linear scan, but without the copy-and-sort cost of
// AllEvents — serving layers call this per lookup request.
func (d *Detector) FindEvent(id uint64) *Event {
	for _, ev := range d.events { //repro:order-insensitive event IDs are unique, so at most one entry matches
		if ev.ID == id {
			return ev
		}
	}
	for _, ev := range d.finished {
		if ev.ID == id {
			return ev
		}
	}
	return nil
}

// TrimFinished drops the oldest finished (ended or merged) events so at
// most max remain, returning how many were dropped; max ≤ 0 means
// unlimited (no-op). Live events are never dropped. Long-lived serving
// deployments call this to bound per-tenant memory — the finished list
// otherwise grows for the life of the stream. Trimmed events disappear
// from AllEvents, FindEvent and subsequent checkpoints; the OnEvict
// hook (if set) observes each one before it goes.
func (d *Detector) TrimFinished(max int) int {
	if max <= 0 || len(d.finished) <= max {
		return 0
	}
	n := len(d.finished) - max
	for _, ev := range d.finished[:n] {
		d.trimmed++
		if d.onEvict != nil {
			d.onEvict(ev)
		}
	}
	d.finished = append(d.finished[:0:0], d.finished[n:]...)
	return n
}

// AllEvents returns every event ever tracked (live and finished), sorted
// by ID (birth order).
func (d *Detector) AllEvents() []*Event {
	out := make([]*Event, 0, len(d.events)+len(d.finished))
	out = append(out, d.finished...)
	for _, ev := range d.events {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
