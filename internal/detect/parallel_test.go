package detect

import (
	"errors"
	"testing"

	"repro/internal/stream"
	"repro/internal/tracegen"
)

// TestRunParallelEquivalence: the parallel pipeline must produce exactly
// the same event history and graph state as the serial one.
func TestRunParallelEquivalence(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.ESConfig(31, 25000))
	cfg := Config{Delta: 120}

	serial := New(cfg)
	if err := serial.Run(stream.NewSliceSource(msgs), nil); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par := New(cfg)
		if err := par.RunParallel(stream.NewSliceSource(msgs), workers, nil); err != nil {
			t.Fatal(err)
		}
		if got, want := eventsDigest(par), eventsDigest(serial); got != want {
			t.Fatalf("workers=%d: parallel run diverged from serial", workers)
		}
		if par.Processed() != serial.Processed() {
			t.Fatalf("workers=%d: processed %d vs %d", workers, par.Processed(), serial.Processed())
		}
	}
}

func TestRunParallelQuantumOrder(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.TWConfig(8, 10000))
	d := New(Config{Delta: 100})
	last := 0
	err := d.RunParallel(stream.NewSliceSource(msgs), 8, func(r *QuantumResult) {
		if r.Quantum != last+1 {
			t.Fatalf("quantum %d delivered after %d", r.Quantum, last)
		}
		last = r.Quantum
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 100 {
		t.Fatalf("saw %d quanta, want 100", last)
	}
}

func TestRunParallelSingleWorkerDelegates(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.TWConfig(8, 3000))
	d := New(Config{Delta: 100})
	if err := d.RunParallel(stream.NewSliceSource(msgs), 1, nil); err != nil {
		t.Fatal(err)
	}
	if d.Processed() != 3000 {
		t.Fatalf("Processed = %d", d.Processed())
	}
}

type failingSource struct{ after int }

func (f *failingSource) Next() (stream.Message, bool, error) {
	if f.after <= 0 {
		return stream.Message{}, false, errors.New("boom")
	}
	f.after--
	return stream.Message{ID: 1, User: 1, Text: "hello world"}, true, nil
}

func TestRunParallelPropagatesSourceError(t *testing.T) {
	d := New(Config{Delta: 10})
	err := d.RunParallel(&failingSource{after: 25}, 4, nil)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("source error lost: %v", err)
	}
}

func TestRunParallelTimeQuanta(t *testing.T) {
	cfg := Config{QuantumTime: 200}
	msgs, _ := tracegen.Generate(tracegen.TWConfig(12, 15000))
	serial := New(cfg)
	if err := serial.Run(stream.NewSliceSource(msgs), nil); err != nil {
		t.Fatal(err)
	}
	par := New(cfg)
	if err := par.RunParallel(stream.NewSliceSource(msgs), 6, nil); err != nil {
		t.Fatal(err)
	}
	if eventsDigest(par) != eventsDigest(serial) {
		t.Fatalf("time-quantum parallel run diverged")
	}
}

// TestSerialDeterminism pins down full run-to-run reproducibility: the
// engine's merge-survivor and split-identity rules, the AKG's sorted
// iteration, and event-ID assignment must make identical inputs produce
// identical histories. (A regression here once came from an unsorted
// tie-break in cluster repair.)
func TestSerialDeterminism(t *testing.T) {
	msgs, _ := tracegen.Generate(tracegen.ESConfig(31, 25000))
	cfg := Config{Delta: 120}
	run := func() string {
		d := New(cfg)
		if err := d.Run(stream.NewSliceSource(msgs), nil); err != nil {
			t.Fatal(err)
		}
		return eventsDigest(d)
	}
	ref := run()
	for i := 0; i < 2; i++ {
		if run() != ref {
			t.Fatalf("identical inputs produced different event histories (attempt %d)", i)
		}
	}
}
