package detect

import (
	"sort"

	"repro/internal/akg"
	"repro/internal/dygraph"
)

// This file implements the pre- and post-processing hooks Section 1.1 of
// the paper describes as complements to the core technique: synonym
// normalisation before graph construction, and correlation of
// contemporaneous clusters that describe the same real-world event with
// different vocabularies.

// RelatedPair reports two live events whose user communities overlap —
// strong evidence they describe the same real-world happening even though
// their keyword clusters did not merge (different vocabulary, different
// language, different perspective).
type RelatedPair struct {
	A           uint64  `json:"a"` // event IDs, A < B
	B           uint64  `json:"b"`
	UserJaccard float64 `json:"user_jaccard"`
}

// RelatedEvents returns all pairs of live reported events whose windowed
// user communities have Jaccard overlap of at least minOverlap, sorted by
// descending overlap. This is the paper's suggested post-processing for
// merging same-event clusters; it is O(live²) on the handful of live
// events, never on the graph.
func (d *Detector) RelatedEvents(minOverlap float64) []RelatedPair {
	// Each event's distinct windowed user community is materialised once
	// (sorted, in a shared arena) and every pair is a linear merge —
	// building per-pair union maps made this O(live²) map churn on the
	// apply path, where it runs every quantum for the epoch snapshot.
	type liveEv struct {
		id       uint64
		off, end int
	}
	var (
		live  []liveEv
		arena []uint64
		nodes []dygraph.NodeID
	)
	eng := d.akg.Engine()
	//repro:order-insensitive per-event arena segments are self-contained; live is sorted by ID before use
	for cid, ev := range d.events {
		if !ev.Reported {
			continue
		}
		c := eng.Cluster(cid)
		if c == nil {
			continue
		}
		nodes = c.AppendNodes(nodes[:0])
		off := len(arena)
		arena = d.akg.AppendUnionUsers(arena, nodes)
		live = append(live, liveEv{id: ev.ID, off: off, end: len(arena)})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	var out []RelatedPair
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			jac := akg.JaccardSorted(arena[live[i].off:live[i].end], arena[live[j].off:live[j].end])
			if jac >= minOverlap {
				out = append(out, RelatedPair{
					A: live[i].id, B: live[j].id, UserJaccard: jac,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UserJaccard != out[j].UserJaccard {
			return out[i].UserJaccard > out[j].UserJaccard
		}
		return out[i].A < out[j].A
	})
	return out
}

// TopK returns the k highest-ranked live reported events — the "trending
// topics" view. k ≤ 0 returns all live reported events.
func (d *Detector) TopK(k int) []*Event {
	live := d.LiveEvents() // already rank-descending
	out := make([]*Event, 0, len(live))
	for _, ev := range live {
		if !ev.Reported {
			continue
		}
		out = append(out, ev)
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// SpuriousEvents returns all tracked events (live or finished) whose rank
// history matches the post-hoc spurious profile of Section 7.2.2 — the
// analysis the paper performs after the fact because future behaviour
// cannot be known at reporting time.
func (d *Detector) SpuriousEvents() []*Event {
	var out []*Event
	for _, ev := range d.AllEvents() {
		if ev.Reported && ev.Spurious() {
			out = append(out, ev)
		}
	}
	return out
}
