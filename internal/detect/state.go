package detect

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"repro/internal/akg"
	"repro/internal/ckg"
	"repro/internal/core"
	"repro/internal/dygraph"
	"repro/internal/stream"
	"repro/internal/textproc"
)

// checkpointMagic versions the checkpoint format.
const checkpointMagic = "repro-detector-v1"

// EventSnapshot is the serialisable form of an Event (AllKeywords
// flattened to a sorted slice for stable, gob-friendly encoding; the
// lifecycle enum stored as an int).
type EventSnapshot struct {
	ID            uint64
	ClusterID     core.ClusterID
	BornQuantum   int
	LastQuantum   int
	Keywords      []string
	Rank          float64
	RankHistory   []float64
	PeakRank      float64
	Evolved       bool
	MergedInto    uint64
	SplitFrom     uint64
	Lifecycle     int
	Support       int
	Size          int
	Reported      bool
	FirstReported int
	AllKeywords   []string
	ExactMQC      bool
}

// DetectorState is a full checkpoint of a Detector: feed the same
// remaining stream to a restored detector and it produces exactly the
// same events as an uninterrupted run.
type DetectorState struct {
	Magic     string
	Cfg       Config
	Words     []string
	NounSeen  []dygraph.NodeID
	AKG       akg.State
	CKG       *ckg.State // nil unless TrackCKG
	Events    []EventSnapshot
	Finished  []EventSnapshot
	NextEvent uint64
	Processed uint64
	// Trimmed is the cumulative TrimFinished eviction count; restoring it
	// keeps eviction ordinals stable across a snapshot + WAL replay, so
	// the archive can deduplicate re-evicted events exactly.
	Trimmed uint64
	Pending []stream.Message // partial quantum buffered at snapshot time
	// Time-quantizer grid position (meaningful when Cfg.QuantumTime > 0).
	TQStart   int64
	TQStarted bool
}

func snapshotEvent(ev *Event) EventSnapshot {
	all := make([]string, 0, len(ev.AllKeywords))
	for kw := range ev.AllKeywords {
		all = append(all, kw)
	}
	sort.Strings(all)
	return EventSnapshot{
		ID:            ev.ID,
		ClusterID:     ev.ClusterID,
		BornQuantum:   ev.BornQuantum,
		LastQuantum:   ev.LastQuantum,
		Keywords:      append([]string(nil), ev.Keywords...),
		Rank:          ev.Rank,
		RankHistory:   append([]float64(nil), ev.RankHistory...),
		PeakRank:      ev.PeakRank,
		Evolved:       ev.Evolved,
		MergedInto:    ev.MergedInto,
		SplitFrom:     ev.SplitFrom,
		Lifecycle:     int(ev.State),
		Support:       ev.Support,
		Size:          ev.Size,
		Reported:      ev.Reported,
		FirstReported: ev.FirstReported,
		AllKeywords:   all,
		ExactMQC:      ev.ExactMQC,
	}
}

func restoreEvent(s EventSnapshot) *Event {
	all := make(map[string]struct{}, len(s.AllKeywords))
	for _, kw := range s.AllKeywords {
		all[kw] = struct{}{}
	}
	return &Event{
		ID:            s.ID,
		ClusterID:     s.ClusterID,
		BornQuantum:   s.BornQuantum,
		LastQuantum:   s.LastQuantum,
		Keywords:      append([]string(nil), s.Keywords...),
		Rank:          s.Rank,
		RankHistory:   append([]float64(nil), s.RankHistory...),
		PeakRank:      s.PeakRank,
		Evolved:       s.Evolved,
		MergedInto:    s.MergedInto,
		SplitFrom:     s.SplitFrom,
		State:         EventState(s.Lifecycle),
		Support:       s.Support,
		Size:          s.Size,
		Reported:      s.Reported,
		FirstReported: s.FirstReported,
		AllKeywords:   all,
		ExactMQC:      s.ExactMQC,
	}
}

// State captures the detector. Must be called at a quantum boundary or
// before the first message of a quantum; buffered partial-quantum
// messages are included, so any point is actually safe.
func (d *Detector) State() DetectorState {
	s := DetectorState{
		Magic:     checkpointMagic,
		Cfg:       d.cfg,
		Words:     d.interner.WordList(),
		AKG:       d.akg.State(),
		NextEvent: d.nextEvent,
		Processed: d.processed,
		Trimmed:   d.trimmed,
	}
	for id, seen := range d.nounSeen { //repro:order-insensitive conditional collect; NounSeen is sorted below
		if seen {
			s.NounSeen = append(s.NounSeen, id)
		}
	}
	sort.Slice(s.NounSeen, func(i, j int) bool { return s.NounSeen[i] < s.NounSeen[j] })
	if d.ckg != nil {
		cs := d.ckg.State()
		s.CKG = &cs
	}
	// Live events sorted by cluster ID for deterministic snapshots.
	cids := make([]core.ClusterID, 0, len(d.events))
	for cid := range d.events {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for _, cid := range cids {
		s.Events = append(s.Events, snapshotEvent(d.events[cid]))
	}
	for _, ev := range d.finished {
		s.Finished = append(s.Finished, snapshotEvent(ev))
	}
	if d.tquant != nil {
		s.Pending = append(s.Pending, d.tquant.Buffered()...)
		s.TQStart, s.TQStarted = d.tquant.Pos()
	} else {
		s.Pending = append(s.Pending, d.quant.Buffered()...)
	}
	return s
}

// FromState reconstructs a detector from a checkpoint.
func FromState(s DetectorState) (*Detector, error) {
	if s.Magic != checkpointMagic {
		return nil, fmt.Errorf("detect: bad checkpoint magic %q", s.Magic)
	}
	cfg := s.Cfg.withDefaults()
	d := &Detector{
		cfg:        cfg,
		interner:   textproc.FromWordList(s.Words),
		nounSeen:   make(map[dygraph.NodeID]bool, len(s.NounSeen)),
		events:     make(map[core.ClusterID]*Event, len(s.Events)),
		nextEvent:  s.NextEvent,
		processed:  s.Processed,
		trimmed:    s.Trimmed,
		mergedInto: make(map[core.ClusterID]core.ClusterID),
		splitFrom:  make(map[core.ClusterID]core.ClusterID),
	}
	if cfg.QuantumTime > 0 {
		d.tquant = stream.NewTimeQuantizer(cfg.QuantumTime)
		d.tquant.Resume(s.TQStart, s.TQStarted)
	} else {
		d.quant = stream.NewQuantizer(cfg.Delta)
	}
	hooks := core.Hooks{
		OnMerged: func(into *core.Cluster, absorbed core.ClusterID) {
			d.mergedInto[absorbed] = into.ID()
		},
		OnSplit: func(from core.ClusterID, parts []*core.Cluster) {
			for _, p := range parts[1:] {
				d.splitFrom[p.ID()] = from
			}
		},
	}
	a, err := akg.FromState(s.AKG, hooks)
	if err != nil {
		return nil, err
	}
	d.akg = a
	if s.CKG != nil {
		d.ckg = ckg.FromState(*s.CKG)
	} else if d.cfg.TrackCKG {
		return nil, fmt.Errorf("detect: checkpoint lacks CKG state but TrackCKG is set")
	}
	for _, id := range s.NounSeen {
		d.nounSeen[id] = true
	}
	for _, es := range s.Events {
		ev := restoreEvent(es)
		if d.akg.Engine().Cluster(ev.ClusterID) == nil {
			return nil, fmt.Errorf("detect: event %d references missing cluster %d", ev.ID, ev.ClusterID)
		}
		d.events[ev.ClusterID] = ev
	}
	for _, es := range s.Finished {
		d.finished = append(d.finished, restoreEvent(es))
	}
	for _, m := range s.Pending {
		if d.tquant != nil {
			if batches := d.tquant.Add(m); len(batches) != 0 {
				return nil, fmt.Errorf("detect: checkpoint pending buffer crosses a time-quantum boundary")
			}
		} else if batch := d.quant.Add(m); batch != nil {
			return nil, fmt.Errorf("detect: checkpoint pending buffer holds a full quantum")
		}
	}
	return d, nil
}

// EncodeState writes an already-captured state as a checkpoint stream
// (the format Save produces and Load reads). State() deep-copies, so a
// serving layer can capture under its detector lock and encode/write
// outside it, keeping slow disk IO off the ingest path.
func EncodeState(s *DetectorState, w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("detect: encode checkpoint: %w", err)
	}
	return nil
}

// Save writes a gob-encoded checkpoint.
func (d *Detector) Save(w io.Writer) error {
	s := d.State()
	return EncodeState(&s, w)
}

// Load reads a checkpoint written by Save and reconstructs the detector.
func Load(r io.Reader) (*Detector, error) {
	var s DetectorState
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("detect: decode checkpoint: %w", err)
	}
	return FromState(s)
}
