// Package akg maintains the Active Correlated Keyword Graph of Section 3:
// the hysteresis-based subgraph of the CKG containing only keywords that
// showed burstiness, with edges between keyword pairs whose user-id sets
// have Jaccard correlation above the EC threshold.
//
// Per quantum the layer:
//
//  1. slides the window, expiring id-set observations older than w quanta
//     and removing stale keywords (not seen in the whole window);
//  2. moves keywords that were used by ≥ τ distinct users this quantum
//     into the high state (set 1 of Section 3.2.1) and adds them to the
//     AKG;
//  3. lazily refreshes the correlation of AKG keywords that appeared in
//     this quantum's messages (set 2) with their current neighbors,
//     dropping edges whose EC fell below β;
//  4. screens set-1 pairs with bottom-p Min-Hash sketches (Section 3.2.2)
//     and inserts edges whose exact Jaccard is ≥ β;
//  5. removes AKG keywords that end up isolated and non-bursty — a
//     keyword stays while it is part of any cluster (the engine tracks
//     membership), which realises the paper's "remains in AKG as long as
//     it is part of an event cluster" rule.
//
// All graph mutations flow through the core.Engine, so clusters are
// maintained incrementally as a side effect of AKG maintenance.
package akg

import (
	"math"
	"slices"

	"repro/internal/ckg"
	"repro/internal/core"
	"repro/internal/dygraph"
	"repro/internal/minhash"
)

// Config holds the tunable parameters of Table 2 plus implementation
// switches used by the ablation benchmarks.
type Config struct {
	// Tau (τ) is the high-state threshold: distinct users per quantum
	// needed for a keyword to turn bursty. Paper nominal: 4.
	Tau int
	// Beta (β) is the edge-correlation threshold on the Jaccard
	// coefficient of user-id sets. Paper nominal: 0.20.
	Beta float64
	// Window (w) is the sliding window length in quanta. Paper nominal: 30.
	Window int
	// P is the Min-Hash sketch size; 0 selects the paper's
	// min(τ/2β, 1/β) rule.
	P int
	// Seed selects the hash family member for Min-Hash.
	Seed uint64

	// MinHashOnly makes the sketch test the edge decision itself (the
	// paper's literal mechanism) instead of a screen before an exact
	// Jaccard computation. Edge weights are then sketch estimates.
	MinHashOnly bool
	// NoMinHashScreen disables sketch screening entirely and computes the
	// exact Jaccard for every candidate pair (ablation arm).
	NoMinHashScreen bool
}

// withDefaults fills zero fields with Table 2 nominal values.
func (c Config) withDefaults() Config {
	if c.Tau <= 0 {
		c.Tau = 4
	}
	if c.Beta <= 0 {
		c.Beta = 0.20
	}
	if c.Window <= 0 {
		c.Window = 30
	}
	if c.P <= 0 {
		c.P = minhash.RecommendedP(c.Tau, c.Beta)
	}
	return c
}

// QuantumStats summarises the work done by one ProcessQuantum call.
type QuantumStats struct {
	Quantum       int // 1-based quantum index
	Keywords      int // distinct keywords observed this quantum
	HighState     int // size of set 1 (bursty this quantum)
	Refreshed     int // size of set 2 (AKG keywords seen this quantum)
	PairsScreened int // candidate pairs examined
	PairsPassed   int // pairs that passed the Min-Hash screen
	EdgesAdded    int
	EdgesRemoved  int
	EdgesUpdated  int // weight refreshes on surviving edges
	NodesAdded    int
	NodesRemoved  int // stale + isolated removals
	// DirtyNodes is the number of vertices whose windowed user support
	// changed this quantum — the vertex set downstream incremental
	// maintenance (event reconciliation) revisits instead of rescanning
	// the whole graph.
	DirtyNodes int
}

type idSet struct {
	counts map[uint64]int // user -> observations inside the window
	// sorted caches the distinct users ascending. Membership changes —
	// a user first observed (userAdded) or expired off the window
	// (userRemoved) — accumulate as deltas, and sortedUsers folds them
	// in with a linear merge instead of re-sorting the whole set: the
	// pairwise-Jaccard path needs ordered lists, and rebuilding them
	// with pdqsort every quantum was the hottest code in the system.
	// sketchStale gates the keyword's cached Min-Hash sketch (held in
	// AKG.sketches), which only needs set membership, not order.
	sorted      []uint64
	added       []uint64 // joined since sorted was built (unsorted)
	removed     []uint64 // left since sorted was built (unsorted)
	sketchStale bool
}

func (s *idSet) size() int { return len(s.counts) }

// userAdded records that u entered the distinct-user set. sorted == nil
// means a full rebuild is already pending — no deltas needed.
func (s *idSet) userAdded(u uint64) {
	s.sketchStale = true
	if s.sorted == nil {
		return
	}
	// A user expiring and reappearing within one delta window must
	// cancel out, or the merge would both exclude and re-include it.
	// Deltas are small (recent churn), so a linear scan beats an index;
	// the scanned list is the opposite delta, which is almost always
	// empty (expiry happens before observation within a quantum).
	for i, r := range s.removed {
		if r == u {
			s.removed[i] = s.removed[len(s.removed)-1]
			s.removed = s.removed[:len(s.removed)-1]
			return // still present in sorted
		}
	}
	s.added = append(s.added, u)
	s.maybeDegrade()
}

// userRemoved records that u left the distinct-user set.
func (s *idSet) userRemoved(u uint64) {
	s.sketchStale = true
	if s.sorted == nil {
		return
	}
	for i, r := range s.added {
		if r == u {
			s.added[i] = s.added[len(s.added)-1]
			s.added = s.added[:len(s.added)-1]
			return // never made it into sorted
		}
	}
	s.removed = append(s.removed, u)
	s.maybeDegrade()
}

// maybeDegrade abandons delta tracking once the accumulated churn
// rivals the set size (a keyword nobody Jaccard-compared for many
// quanta) — at that point one full rebuild is cheaper than carrying
// and scanning the deltas.
func (s *idSet) maybeDegrade() {
	if d := len(s.added) + len(s.removed); d > 64 && d*2 > len(s.counts) {
		s.sorted = nil
		s.added = s.added[:0]
		s.removed = s.removed[:0]
	}
}

// quantumObs is one quantum's observations in columnar form: distinct
// keywords ascending, each key's distinct users (ascending) in one
// shared slice addressed by prefix offsets. Three allocations per
// quantum retained in the ring, where the old keyword→users map cost
// one per keyword — and the window slide walks it in expiry order for
// free.
type quantumObs struct {
	keys  []dygraph.NodeID
	off   []int32 // len(keys)+1 prefix offsets into users
	users []uint64
}

// usersOf returns the distinct users of keys[i], ascending.
func (q *quantumObs) usersOf(i int) []uint64 { return q.users[q.off[i]:q.off[i+1]] }

// AKG is the active keyword graph plus the cluster engine it drives.
type AKG struct {
	cfg     Config
	eng     *core.Engine
	quantum int

	ring    []quantumObs // per live quantum, oldest first
	idsets  map[dygraph.NodeID]*idSet
	present map[dygraph.NodeID]bool // keyword currently in AKG

	// dirty is the set of vertices whose windowed support changed this
	// quantum (new user observed, or a user expired off the window).
	// Together with the engine's touched-cluster set it tells the
	// detector which clusters need their rank recomputed.
	dirty dygraph.DirtySet

	// scratch reused across quanta
	sketches   map[dygraph.NodeID]*minhash.Sketch
	keyScratch []dygraph.NodeID
	curScratch []int32
	set1       []dygraph.NodeID
	set2       []dygraph.NodeID
	refresh    []dygraph.NodeID // set2 ++ set1 concatenation for refreshEdges
	nbrs       []dygraph.NodeID // sorted-neighbor scratch
	visited    map[dygraph.Edge]struct{}
	drop       []edgeRef
	keep       []edgeRef
	weights    []float64
	high       map[dygraph.NodeID]bool

	// union-support scratch (single-threaded use under the apply lock).
	mergeScratch []uint64
	listScratch  [][]uint64
}

type edgeRef struct{ a, b dygraph.NodeID }

// New returns an AKG layer driving a fresh cluster engine whose lifecycle
// callbacks go to hooks.
func New(cfg Config, hooks core.Hooks) *AKG {
	cfg = cfg.withDefaults()
	return &AKG{
		cfg:      cfg,
		eng:      core.NewEngine(hooks),
		idsets:   make(map[dygraph.NodeID]*idSet),
		present:  make(map[dygraph.NodeID]bool),
		sketches: make(map[dygraph.NodeID]*minhash.Sketch),
		visited:  make(map[dygraph.Edge]struct{}),
		high:     make(map[dygraph.NodeID]bool),
	}
}

// Config returns the effective configuration (defaults resolved).
func (a *AKG) Config() Config { return a.cfg }

// Engine exposes the cluster engine (read-only use).
func (a *AKG) Engine() *core.Engine { return a.eng }

// Quantum returns the number of quanta processed so far.
func (a *AKG) Quantum() int { return a.quantum }

// Support returns the number of distinct users associated with keyword k
// inside the current window — the node weight w_i of the ranking function
// (Section 6).
func (a *AKG) Support(k dygraph.NodeID) int {
	if s, ok := a.idsets[k]; ok {
		return s.size()
	}
	return 0
}

// UnionSupport returns the number of distinct users associated with any of
// the given keywords inside the window — the cluster support measure of
// the ranking function (Section 6). Computed as a k-way distinct count
// over the cached sorted user lists (k is a cluster's node count, a
// handful), replacing the per-call union map the apply path used to
// build for every dirty cluster every quantum. Single-threaded use.
func (a *AKG) UnionSupport(ks []dygraph.NodeID) int {
	lists := a.listScratch[:0]
	for _, k := range ks {
		if u := a.sortedUsers(k); len(u) > 0 {
			lists = append(lists, u)
		}
	}
	a.listScratch = lists[:0]
	return countDistinct(lists)
}

// countDistinct counts the distinct values across sorted ascending
// lists (duplicate-free individually) by advancing k cursors in step.
func countDistinct(lists [][]uint64) int {
	switch len(lists) {
	case 0:
		return 0
	case 1:
		return len(lists[0])
	}
	distinct := 0
	for {
		var (
			min   uint64
			found bool
		)
		for _, l := range lists {
			if len(l) == 0 {
				continue
			}
			if !found || l[0] < min {
				min, found = l[0], true
			}
		}
		if !found {
			return distinct
		}
		distinct++
		for i, l := range lists {
			if len(l) > 0 && l[0] == min {
				lists[i] = l[1:]
			}
		}
	}
}

// UserJaccard returns the Jaccard coefficient between the windowed user
// communities of two keyword sets. The detector's post-processing uses it
// to correlate clusters that describe the same real-world event with
// different vocabularies (Section 1.1, case 2: "users indeed used
// different keywords, providing different perspectives about the same
// event" — such clusters show strong user overlap).
func (a *AKG) UserJaccard(ks1, ks2 []dygraph.NodeID) float64 {
	u1 := a.unionUsers(ks1)
	u2 := a.unionUsers(ks2)
	if len(u1) == 0 || len(u2) == 0 {
		return 0
	}
	if len(u1) > len(u2) {
		u1, u2 = u2, u1
	}
	inter := 0
	for u := range u1 {
		if _, ok := u2[u]; ok {
			inter++
		}
	}
	union := len(u1) + len(u2) - inter
	return float64(inter) / float64(union)
}

func (a *AKG) unionUsers(ks []dygraph.NodeID) map[uint64]struct{} {
	users := make(map[uint64]struct{})
	for _, k := range ks {
		if set, ok := a.idsets[k]; ok {
			for u := range set.counts {
				users[u] = struct{}{}
			}
		}
	}
	return users
}

// DirtyNodes returns the vertices whose windowed user support changed
// during the last ProcessQuantum, in mark order. Valid until the next
// ProcessQuantum. Structural changes (edges added/removed/reweighted,
// nodes added/removed) are tracked separately by the engine's
// touched-cluster set; together the two describe every cluster whose
// rank inputs could have moved.
func (a *AKG) DirtyNodes() []dygraph.NodeID { return a.dirty.Nodes() }

// InAKG reports whether keyword k is currently an AKG node.
func (a *AKG) InAKG(k dygraph.NodeID) bool { return a.present[k] }

// NodeCount returns the number of AKG nodes.
func (a *AKG) NodeCount() int { return len(a.present) }

// EdgeCount returns the number of AKG edges.
func (a *AKG) EdgeCount() int { return a.eng.Graph().EdgeCount() }

// Jaccard returns the exact edge correlation of two keywords' windowed
// user-id sets.
func (a *AKG) Jaccard(k1, k2 dygraph.NodeID) float64 {
	s1, ok1 := a.idsets[k1]
	s2, ok2 := a.idsets[k2]
	if !ok1 || !ok2 || s1.size() == 0 || s2.size() == 0 {
		return 0
	}
	small, large := s1.counts, s2.counts
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for u := range small {
		if _, ok := large[u]; ok {
			inter++
		}
	}
	union := len(s1.counts) + len(s2.counts) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ProcessQuantum ingests one quantum of per-user keyword sets (keywords
// must be distinct within each user's set) and performs the five
// maintenance steps described in the package comment.
func (a *AKG) ProcessQuantum(batch []ckg.UserKeywords) QuantumStats {
	a.quantum++
	st := QuantumStats{Quantum: a.quantum}
	a.eng.BeginQuantum()
	a.dirty.Reset()

	a.slideWindow(&st)

	// Observe this quantum: group the batch's (keyword, user) pairs by
	// keyword into the columnar ring entry — in expiry order, with no
	// per-keyword map. Keys are sorted with the specialised ordered
	// sort (duplicates included), then each user is placed into its
	// key's slot range by binary search; users ascend across the batch,
	// so every group comes out user-ascending.
	keysAll := a.keyScratch[:0]
	for _, uk := range batch {
		keysAll = append(keysAll, uk.Keywords...)
	}
	a.keyScratch = keysAll
	slices.Sort(keysAll)
	distinct := 0
	for i := 0; i < len(keysAll); {
		j := i + 1
		for j < len(keysAll) && keysAll[j] == keysAll[i] {
			j++
		}
		distinct++
		i = j
	}
	obs := quantumObs{
		keys:  make([]dygraph.NodeID, 0, distinct),
		off:   make([]int32, 1, distinct+1),
		users: make([]uint64, len(keysAll)),
	}
	for i := 0; i < len(keysAll); {
		j := i + 1
		for j < len(keysAll) && keysAll[j] == keysAll[i] {
			j++
		}
		obs.keys = append(obs.keys, keysAll[i])
		obs.off = append(obs.off, int32(j))
		i = j
	}
	cur := a.curScratch[:0]
	cur = append(cur, obs.off[:len(obs.keys)]...)
	a.curScratch = cur
	for _, uk := range batch {
		for _, k := range uk.Keywords {
			ki, _ := slices.BinarySearch(obs.keys, k)
			obs.users[cur[ki]] = uk.User
			cur[ki]++
		}
	}
	for ki, k := range obs.keys {
		users := obs.usersOf(ki)
		set, ok := a.idsets[k]
		if !ok {
			set = &idSet{counts: make(map[uint64]int, len(users))}
			a.idsets[k] = set
		}
		// A keyword whose distinct-user set grew is support-dirty: its
		// node weight in the ranking function changed.
		for _, u := range users {
			if set.counts[u] == 0 {
				a.dirty.Mark(k)
				set.userAdded(u)
			}
			set.counts[u]++
		}
	}
	a.ring = append(a.ring, obs)
	st.Keywords = len(obs.keys)

	// Classify: set1 = bursty this quantum; set2 = in AKG and observed.
	// Keys are already ascending, so both lists come out sorted.
	set1, set2 := a.set1[:0], a.set2[:0]
	for i, k := range obs.keys {
		if int(obs.off[i+1]-obs.off[i]) >= a.cfg.Tau {
			set1 = append(set1, k)
		} else if a.present[k] {
			set2 = append(set2, k)
		}
	}
	// Bursty AKG members count for both roles; set2 handling below walks
	// set1 members' existing neighbors too, so keep the lists disjoint.
	a.set1, a.set2 = set1, set2
	st.HighState = len(set1)
	st.Refreshed = len(set2)

	// Admit bursty keywords.
	for _, k := range set1 {
		if !a.present[k] {
			a.present[k] = true
			a.eng.AddNode(k)
			st.NodesAdded++
		}
	}

	// Lazy correlation refresh for observed AKG keywords and bursty
	// keywords that already have neighbors.
	a.refresh = append(append(a.refresh[:0], set2...), set1...)
	a.refreshEdges(a.refresh, &st)

	// New edges among set-1 pairs.
	a.connectBursty(set1, &st)

	// Isolated, non-bursty keywords leave the AKG (they are in no
	// cluster by construction).
	clear(a.high)
	for _, k := range set1 {
		a.high[k] = true
	}
	a.refresh = append(append(a.refresh[:0], set1...), set2...)
	for _, k := range a.refresh {
		if a.present[k] && !a.high[k] && a.eng.Graph().Degree(k) == 0 {
			a.eng.RemoveNode(k)
			delete(a.present, k)
			st.NodesRemoved++
		}
	}
	st.DirtyNodes = a.dirty.Len()
	return st
}

// slideWindow expires the oldest quantum once the ring is full and removes
// keywords whose id sets emptied (stale: unseen for a whole window).
func (a *AKG) slideWindow(st *QuantumStats) {
	if len(a.ring) < a.cfg.Window {
		return
	}
	oldest := a.ring[0]
	copy(a.ring, a.ring[1:])
	a.ring = a.ring[:len(a.ring)-1]
	// Keys are stored ascending, so expiry is naturally sorted: node
	// removals reach the engine, where split identities must be
	// reproducible across runs.
	for ki, k := range oldest.keys {
		set, ok := a.idsets[k]
		if !ok {
			continue
		}
		shrank := false
		for _, u := range oldest.usersOf(ki) {
			set.counts[u]--
			if set.counts[u] <= 0 {
				delete(set.counts, u)
				set.userRemoved(u)
				shrank = true
			}
		}
		if shrank {
			// Support shrank without any engine mutation; clusters
			// containing k must still be re-ranked.
			a.dirty.Mark(k)
		}
		if set.size() == 0 {
			delete(a.idsets, k)
			if a.present[k] {
				a.eng.RemoveNode(k)
				delete(a.present, k)
				st.NodesRemoved++
			}
		}
	}
}

// refreshEdges re-evaluates the EC of every edge incident to the given
// keywords (each edge once), removing edges under threshold and updating
// surviving weights — Section 3.1's lazy update principle.
func (a *AKG) refreshEdges(keys []dygraph.NodeID, st *QuantumStats) {
	clear(a.visited)
	drop, keep, weights := a.drop[:0], a.keep[:0], a.weights[:0]
	for _, k := range keys {
		if !a.present[k] {
			continue
		}
		// Sorted neighbor iteration: removal order reaches the engine,
		// where split identities must be reproducible across runs.
		a.nbrs = a.eng.Graph().AppendNeighbors(a.nbrs[:0], k)
		for _, m := range a.nbrs {
			e := dygraph.NewEdge(k, m)
			if _, ok := a.visited[e]; ok {
				continue
			}
			a.visited[e] = struct{}{}
			j := a.correlation(k, m)
			if j < a.cfg.Beta {
				drop = append(drop, edgeRef{k, m})
			} else {
				keep = append(keep, edgeRef{k, m})
				weights = append(weights, j)
			}
		}
	}
	a.drop, a.keep, a.weights = drop, keep, weights
	for _, e := range drop {
		a.eng.RemoveEdge(e.a, e.b)
		st.EdgesRemoved++
	}
	for i, e := range keep {
		a.eng.SetWeight(e.a, e.b, weights[i])
		st.EdgesUpdated++
	}
}

// connectBursty screens set-1 pairs with Min-Hash and inserts edges whose
// correlation clears β.
func (a *AKG) connectBursty(set1 []dygraph.NodeID, st *QuantumStats) {
	if len(set1) < 2 {
		return
	}
	if !a.cfg.NoMinHashScreen {
		a.buildSketches(set1)
	}
	for i := 0; i < len(set1); i++ {
		for j := i + 1; j < len(set1); j++ {
			k1, k2 := set1[i], set1[j]
			if a.eng.Graph().HasEdge(k1, k2) {
				continue // already refreshed this quantum
			}
			st.PairsScreened++
			var w float64
			switch {
			case a.cfg.MinHashOnly:
				if !minhash.SharesValue(a.sketches[k1], a.sketches[k2]) {
					continue
				}
				st.PairsPassed++
				w = minhash.EstimateJaccard(a.sketches[k1], a.sketches[k2])
				if w <= 0 {
					continue
				}
			case a.cfg.NoMinHashScreen:
				st.PairsPassed++
				w = a.jaccardCached(k1, k2)
				if w < a.cfg.Beta {
					continue
				}
			default:
				if !minhash.SharesValue(a.sketches[k1], a.sketches[k2]) {
					continue
				}
				st.PairsPassed++
				w = a.jaccardCached(k1, k2)
				if w < a.cfg.Beta {
					continue
				}
			}
			a.eng.AddEdge(k1, k2, w)
			st.EdgesAdded++
		}
	}
}

// sortedUsers returns keyword k's distinct windowed users as a sorted
// slice. The list is maintained incrementally: membership deltas since
// the last call are folded in with one linear merge (the deltas
// themselves are tiny and sorted in O(d log d)), so the per-quantum
// cost scales with churn instead of set size — re-sorting every hot
// keyword's full window community each quantum was the hottest code in
// the system. Returns nil for an unknown keyword; the slice is owned
// by the id set and valid until its next membership change.
func (a *AKG) sortedUsers(k dygraph.NodeID) []uint64 {
	set, ok := a.idsets[k]
	if !ok {
		return nil
	}
	if set.sorted == nil {
		// Full (re)build: fresh keyword, restored checkpoint, or delta
		// tracking degraded under churn.
		set.sorted = make([]uint64, 0, len(set.counts))
		for u := range set.counts {
			set.sorted = append(set.sorted, u)
		}
		slices.Sort(set.sorted)
		set.added = set.added[:0]
		set.removed = set.removed[:0]
		return set.sorted
	}
	if len(set.added) == 0 && len(set.removed) == 0 {
		return set.sorted
	}
	slices.Sort(set.added)
	slices.Sort(set.removed)
	// Merge old ∖ removed with added. The cancellation in
	// userAdded/userRemoved guarantees added ∩ old = ∅ and
	// removed ⊆ old, so a plain two-way merge with a skip cursor is
	// exact.
	out := a.mergeScratch[:0]
	old, add, rem := set.sorted, set.added, set.removed
	i, j, r := 0, 0, 0
	for i < len(old) || j < len(add) {
		if i < len(old) && (j == len(add) || old[i] < add[j]) {
			if r < len(rem) && old[i] == rem[r] {
				i++
				r++
				continue
			}
			out = append(out, old[i])
			i++
		} else {
			out = append(out, add[j])
			j++
		}
	}
	a.mergeScratch = out
	set.sorted = append(set.sorted[:0], out...)
	set.added = set.added[:0]
	set.removed = set.removed[:0]
	return set.sorted
}

// jaccardCached is the exact Jaccard of Jaccard, computed as a linear
// merge of the cached sorted user lists. Contract: for values ≥ β the
// result is exact (callers store it as the edge weight); below β
// callers only compare against β and discard, so a provable sub-β pair
// may return 0 without the merge — J ≤ min/max, giving an O(1)
// rejection for size-skewed pairs.
func (a *AKG) jaccardCached(k1, k2 dygraph.NodeID) float64 {
	u1 := a.sortedUsers(k1)
	u2 := a.sortedUsers(k2)
	if len(u1) == 0 || len(u2) == 0 {
		return 0
	}
	lo, hi := len(u1), len(u2)
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(lo) < a.cfg.Beta*float64(hi) {
		return 0 // J ≤ lo/hi < β: unobservable below the threshold
	}
	// needInter is the intersection size below which J < β is certain
	// (J ≥ β ⇔ inter ≥ β(n1+n2)/(1+β)); the merge bails as soon as even
	// a perfect remaining overlap cannot reach it. The 0.25 margin
	// absorbs the float rounding of needInter: intersections are
	// integers, so a pair at exactly β can never be misclassified. The
	// bound is folded into one integer per comparison so the hot merge
	// loop pays a single subtract-and-compare.
	needInter := int(math.Ceil(a.cfg.Beta*float64(len(u1)+len(u2))/(1+a.cfg.Beta) - 0.25))
	inter := 0
	i, j := 0, 0
	for i < len(u1) && j < len(u2) {
		rem := len(u1) - i
		if r2 := len(u2) - j; r2 < rem {
			rem = r2
		}
		if inter+rem < needInter {
			return 0 // cannot reach β anymore
		}
		switch {
		case u1[i] == u2[j]:
			inter++
			i++
			j++
		case u1[i] < u2[j]:
			i++
		default:
			j++
		}
	}
	union := len(u1) + len(u2) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// AppendUnionUsers appends the distinct users supporting any of ks
// (sorted ascending) to dst, reusing its capacity — the same k-way walk
// as UnionSupport, emitting the values. Single-threaded use only.
func (a *AKG) AppendUnionUsers(dst []uint64, ks []dygraph.NodeID) []uint64 {
	lists := a.listScratch[:0]
	for _, k := range ks {
		if u := a.sortedUsers(k); len(u) > 0 {
			lists = append(lists, u)
		}
	}
	defer func() { a.listScratch = lists[:0] }()
	if len(lists) == 1 {
		return append(dst, lists[0]...)
	}
	for {
		var (
			min   uint64
			found bool
		)
		for _, l := range lists {
			if len(l) == 0 {
				continue
			}
			if !found || l[0] < min {
				min, found = l[0], true
			}
		}
		if !found {
			return dst
		}
		dst = append(dst, min)
		for i, l := range lists {
			if len(l) > 0 && l[0] == min {
				lists[i] = l[1:]
			}
		}
	}
}

// JaccardSorted returns |A∩B| / |A∪B| of two sorted duplicate-free user
// lists — the merge-based form of UserJaccard for callers that hold the
// union lists already (0 when either is empty, like UserJaccard).
func JaccardSorted(u1, u2 []uint64) float64 {
	if len(u1) == 0 || len(u2) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(u1) && j < len(u2) {
		switch {
		case u1[i] == u2[j]:
			inter++
			i++
			j++
		case u1[i] < u2[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(u1)+len(u2)-inter)
}

// correlation returns the EC used for edge decisions, honouring the
// MinHashOnly switch.
func (a *AKG) correlation(k1, k2 dygraph.NodeID) float64 {
	if a.cfg.MinHashOnly {
		a.buildSketches([]dygraph.NodeID{k1, k2})
		if !minhash.SharesValue(a.sketches[k1], a.sketches[k2]) {
			return 0
		}
		return minhash.EstimateJaccard(a.sketches[k1], a.sketches[k2])
	}
	return a.jaccardCached(k1, k2)
}

// buildSketches ensures window sketches for the given keywords are
// current. Sketches cannot subtract expired users, so a keyword's
// sketch is rebuilt from its id set — but only when the set's
// membership actually changed since the last build (the sketch is a
// pure function of the membership set, insertion-order independent),
// which preserves the paper's per-quantum p-Min-Hash semantics at a
// fraction of the hashing cost.
func (a *AKG) buildSketches(keys []dygraph.NodeID) {
	for _, k := range keys {
		sk, ok := a.sketches[k]
		if !ok {
			sk = minhash.New(a.cfg.P, a.cfg.Seed)
			a.sketches[k] = sk
		}
		set := a.idsets[k]
		if set == nil {
			sk.Reset()
			continue
		}
		if ok && !set.sketchStale {
			continue
		}
		sk.Reset()
		// The bottom-p sketch is a pure function of the membership set
		// (insertion-order independent); feeding it the incrementally
		// maintained sorted list costs a delta fold that the pairwise
		// Jaccard path would pay anyway for these same keywords, and
		// beats iterating the counts map.
		for _, u := range a.sortedUsers(k) {
			sk.Add(u)
		}
		set.sketchStale = false
	}
}
