// Package akg maintains the Active Correlated Keyword Graph of Section 3:
// the hysteresis-based subgraph of the CKG containing only keywords that
// showed burstiness, with edges between keyword pairs whose user-id sets
// have Jaccard correlation above the EC threshold.
//
// Per quantum the layer:
//
//  1. slides the window, expiring id-set observations older than w quanta
//     and removing stale keywords (not seen in the whole window);
//  2. moves keywords that were used by ≥ τ distinct users this quantum
//     into the high state (set 1 of Section 3.2.1) and adds them to the
//     AKG;
//  3. lazily refreshes the correlation of AKG keywords that appeared in
//     this quantum's messages (set 2) with their current neighbors,
//     dropping edges whose EC fell below β;
//  4. screens set-1 pairs with bottom-p Min-Hash sketches (Section 3.2.2)
//     and inserts edges whose exact Jaccard is ≥ β;
//  5. removes AKG keywords that end up isolated and non-bursty — a
//     keyword stays while it is part of any cluster (the engine tracks
//     membership), which realises the paper's "remains in AKG as long as
//     it is part of an event cluster" rule.
//
// All graph mutations flow through the core.Engine, so clusters are
// maintained incrementally as a side effect of AKG maintenance.
package akg

import (
	"sort"

	"repro/internal/ckg"
	"repro/internal/core"
	"repro/internal/dygraph"
	"repro/internal/minhash"
)

// Config holds the tunable parameters of Table 2 plus implementation
// switches used by the ablation benchmarks.
type Config struct {
	// Tau (τ) is the high-state threshold: distinct users per quantum
	// needed for a keyword to turn bursty. Paper nominal: 4.
	Tau int
	// Beta (β) is the edge-correlation threshold on the Jaccard
	// coefficient of user-id sets. Paper nominal: 0.20.
	Beta float64
	// Window (w) is the sliding window length in quanta. Paper nominal: 30.
	Window int
	// P is the Min-Hash sketch size; 0 selects the paper's
	// min(τ/2β, 1/β) rule.
	P int
	// Seed selects the hash family member for Min-Hash.
	Seed uint64

	// MinHashOnly makes the sketch test the edge decision itself (the
	// paper's literal mechanism) instead of a screen before an exact
	// Jaccard computation. Edge weights are then sketch estimates.
	MinHashOnly bool
	// NoMinHashScreen disables sketch screening entirely and computes the
	// exact Jaccard for every candidate pair (ablation arm).
	NoMinHashScreen bool
}

// withDefaults fills zero fields with Table 2 nominal values.
func (c Config) withDefaults() Config {
	if c.Tau <= 0 {
		c.Tau = 4
	}
	if c.Beta <= 0 {
		c.Beta = 0.20
	}
	if c.Window <= 0 {
		c.Window = 30
	}
	if c.P <= 0 {
		c.P = minhash.RecommendedP(c.Tau, c.Beta)
	}
	return c
}

// QuantumStats summarises the work done by one ProcessQuantum call.
type QuantumStats struct {
	Quantum       int // 1-based quantum index
	Keywords      int // distinct keywords observed this quantum
	HighState     int // size of set 1 (bursty this quantum)
	Refreshed     int // size of set 2 (AKG keywords seen this quantum)
	PairsScreened int // candidate pairs examined
	PairsPassed   int // pairs that passed the Min-Hash screen
	EdgesAdded    int
	EdgesRemoved  int
	EdgesUpdated  int // weight refreshes on surviving edges
	NodesAdded    int
	NodesRemoved  int // stale + isolated removals
}

type idSet struct {
	counts map[uint64]int // user -> observations inside the window
}

func (s *idSet) size() int { return len(s.counts) }

// AKG is the active keyword graph plus the cluster engine it drives.
type AKG struct {
	cfg     Config
	eng     *core.Engine
	quantum int

	ring    []map[dygraph.NodeID][]uint64 // per live quantum: keyword -> users
	idsets  map[dygraph.NodeID]*idSet
	present map[dygraph.NodeID]bool // keyword currently in AKG

	// scratch reused across quanta
	sketches map[dygraph.NodeID]*minhash.Sketch
}

// New returns an AKG layer driving a fresh cluster engine whose lifecycle
// callbacks go to hooks.
func New(cfg Config, hooks core.Hooks) *AKG {
	cfg = cfg.withDefaults()
	return &AKG{
		cfg:      cfg,
		eng:      core.NewEngine(hooks),
		idsets:   make(map[dygraph.NodeID]*idSet),
		present:  make(map[dygraph.NodeID]bool),
		sketches: make(map[dygraph.NodeID]*minhash.Sketch),
	}
}

// Config returns the effective configuration (defaults resolved).
func (a *AKG) Config() Config { return a.cfg }

// Engine exposes the cluster engine (read-only use).
func (a *AKG) Engine() *core.Engine { return a.eng }

// Quantum returns the number of quanta processed so far.
func (a *AKG) Quantum() int { return a.quantum }

// Support returns the number of distinct users associated with keyword k
// inside the current window — the node weight w_i of the ranking function
// (Section 6).
func (a *AKG) Support(k dygraph.NodeID) int {
	if s, ok := a.idsets[k]; ok {
		return s.size()
	}
	return 0
}

// UnionSupport returns the number of distinct users associated with any of
// the given keywords inside the window — the cluster support measure of
// the ranking function (Section 6).
func (a *AKG) UnionSupport(ks []dygraph.NodeID) int {
	users := make(map[uint64]struct{})
	for _, k := range ks {
		if set, ok := a.idsets[k]; ok {
			for u := range set.counts {
				users[u] = struct{}{}
			}
		}
	}
	return len(users)
}

// UserJaccard returns the Jaccard coefficient between the windowed user
// communities of two keyword sets. The detector's post-processing uses it
// to correlate clusters that describe the same real-world event with
// different vocabularies (Section 1.1, case 2: "users indeed used
// different keywords, providing different perspectives about the same
// event" — such clusters show strong user overlap).
func (a *AKG) UserJaccard(ks1, ks2 []dygraph.NodeID) float64 {
	u1 := a.unionUsers(ks1)
	u2 := a.unionUsers(ks2)
	if len(u1) == 0 || len(u2) == 0 {
		return 0
	}
	if len(u1) > len(u2) {
		u1, u2 = u2, u1
	}
	inter := 0
	for u := range u1 {
		if _, ok := u2[u]; ok {
			inter++
		}
	}
	union := len(u1) + len(u2) - inter
	return float64(inter) / float64(union)
}

func (a *AKG) unionUsers(ks []dygraph.NodeID) map[uint64]struct{} {
	users := make(map[uint64]struct{})
	for _, k := range ks {
		if set, ok := a.idsets[k]; ok {
			for u := range set.counts {
				users[u] = struct{}{}
			}
		}
	}
	return users
}

// InAKG reports whether keyword k is currently an AKG node.
func (a *AKG) InAKG(k dygraph.NodeID) bool { return a.present[k] }

// NodeCount returns the number of AKG nodes.
func (a *AKG) NodeCount() int { return len(a.present) }

// EdgeCount returns the number of AKG edges.
func (a *AKG) EdgeCount() int { return a.eng.Graph().EdgeCount() }

// Jaccard returns the exact edge correlation of two keywords' windowed
// user-id sets.
func (a *AKG) Jaccard(k1, k2 dygraph.NodeID) float64 {
	s1, ok1 := a.idsets[k1]
	s2, ok2 := a.idsets[k2]
	if !ok1 || !ok2 || s1.size() == 0 || s2.size() == 0 {
		return 0
	}
	small, large := s1.counts, s2.counts
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for u := range small {
		if _, ok := large[u]; ok {
			inter++
		}
	}
	union := len(s1.counts) + len(s2.counts) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ProcessQuantum ingests one quantum of per-user keyword sets (keywords
// must be distinct within each user's set) and performs the five
// maintenance steps described in the package comment.
func (a *AKG) ProcessQuantum(batch []ckg.UserKeywords) QuantumStats {
	a.quantum++
	st := QuantumStats{Quantum: a.quantum}

	a.slideWindow(&st)

	// Observe this quantum: per-keyword distinct user lists + id sets.
	obs := make(map[dygraph.NodeID][]uint64)
	for _, uk := range batch {
		for _, k := range uk.Keywords {
			obs[k] = append(obs[k], uk.User)
			set, ok := a.idsets[k]
			if !ok {
				set = &idSet{counts: make(map[uint64]int, 4)}
				a.idsets[k] = set
			}
			set.counts[uk.User]++
		}
	}
	a.ring = append(a.ring, obs)
	st.Keywords = len(obs)

	// Classify: set1 = bursty this quantum; set2 = in AKG and observed.
	var set1, set2 []dygraph.NodeID
	for k, users := range obs {
		if len(users) >= a.cfg.Tau {
			set1 = append(set1, k)
		} else if a.present[k] {
			set2 = append(set2, k)
		}
	}
	// Bursty AKG members count for both roles; set2 handling below walks
	// set1 members' existing neighbors too, so keep the lists disjoint.
	sortNodes(set1)
	sortNodes(set2)
	st.HighState = len(set1)
	st.Refreshed = len(set2)

	// Admit bursty keywords.
	for _, k := range set1 {
		if !a.present[k] {
			a.present[k] = true
			a.eng.AddNode(k)
			st.NodesAdded++
		}
	}

	// Lazy correlation refresh for observed AKG keywords and bursty
	// keywords that already have neighbors.
	a.refreshEdges(append(append([]dygraph.NodeID{}, set2...), set1...), &st)

	// New edges among set-1 pairs.
	a.connectBursty(set1, &st)

	// Isolated, non-bursty keywords leave the AKG (they are in no
	// cluster by construction).
	high := make(map[dygraph.NodeID]bool, len(set1))
	for _, k := range set1 {
		high[k] = true
	}
	for _, k := range append(append([]dygraph.NodeID{}, set1...), set2...) {
		if a.present[k] && !high[k] && a.eng.Graph().Degree(k) == 0 {
			a.eng.RemoveNode(k)
			delete(a.present, k)
			st.NodesRemoved++
		}
	}
	return st
}

// slideWindow expires the oldest quantum once the ring is full and removes
// keywords whose id sets emptied (stale: unseen for a whole window).
func (a *AKG) slideWindow(st *QuantumStats) {
	if len(a.ring) < a.cfg.Window {
		return
	}
	oldest := a.ring[0]
	copy(a.ring, a.ring[1:])
	a.ring = a.ring[:len(a.ring)-1]
	// Sorted expiry: node removals reach the engine, where split
	// identities must be reproducible across runs.
	keys := make([]dygraph.NodeID, 0, len(oldest))
	for k := range oldest {
		keys = append(keys, k)
	}
	sortNodes(keys)
	for _, k := range keys {
		users := oldest[k]
		set, ok := a.idsets[k]
		if !ok {
			continue
		}
		for _, u := range users {
			set.counts[u]--
			if set.counts[u] <= 0 {
				delete(set.counts, u)
			}
		}
		if set.size() == 0 {
			delete(a.idsets, k)
			if a.present[k] {
				a.eng.RemoveNode(k)
				delete(a.present, k)
				st.NodesRemoved++
			}
		}
	}
}

// refreshEdges re-evaluates the EC of every edge incident to the given
// keywords (each edge once), removing edges under threshold and updating
// surviving weights — Section 3.1's lazy update principle.
func (a *AKG) refreshEdges(keys []dygraph.NodeID, st *QuantumStats) {
	type edgeRef struct{ a, b dygraph.NodeID }
	visited := make(map[dygraph.Edge]struct{})
	var drop, keep []edgeRef
	var weights []float64
	for _, k := range keys {
		if !a.present[k] {
			continue
		}
		// Sorted neighbor iteration: removal order reaches the engine,
		// where split identities must be reproducible across runs.
		for _, m := range a.eng.Graph().NeighborSlice(k) {
			e := dygraph.NewEdge(k, m)
			if _, ok := visited[e]; ok {
				continue
			}
			visited[e] = struct{}{}
			j := a.correlation(k, m)
			if j < a.cfg.Beta {
				drop = append(drop, edgeRef{k, m})
			} else {
				keep = append(keep, edgeRef{k, m})
				weights = append(weights, j)
			}
		}
	}
	for _, e := range drop {
		a.eng.RemoveEdge(e.a, e.b)
		st.EdgesRemoved++
	}
	for i, e := range keep {
		a.eng.SetWeight(e.a, e.b, weights[i])
		st.EdgesUpdated++
	}
}

// connectBursty screens set-1 pairs with Min-Hash and inserts edges whose
// correlation clears β.
func (a *AKG) connectBursty(set1 []dygraph.NodeID, st *QuantumStats) {
	if len(set1) < 2 {
		return
	}
	if !a.cfg.NoMinHashScreen {
		a.buildSketches(set1)
	}
	for i := 0; i < len(set1); i++ {
		for j := i + 1; j < len(set1); j++ {
			k1, k2 := set1[i], set1[j]
			if a.eng.Graph().HasEdge(k1, k2) {
				continue // already refreshed this quantum
			}
			st.PairsScreened++
			var w float64
			switch {
			case a.cfg.MinHashOnly:
				if !minhash.SharesValue(a.sketches[k1], a.sketches[k2]) {
					continue
				}
				st.PairsPassed++
				w = minhash.EstimateJaccard(a.sketches[k1], a.sketches[k2])
				if w <= 0 {
					continue
				}
			case a.cfg.NoMinHashScreen:
				st.PairsPassed++
				w = a.Jaccard(k1, k2)
				if w < a.cfg.Beta {
					continue
				}
			default:
				if !minhash.SharesValue(a.sketches[k1], a.sketches[k2]) {
					continue
				}
				st.PairsPassed++
				w = a.Jaccard(k1, k2)
				if w < a.cfg.Beta {
					continue
				}
			}
			a.eng.AddEdge(k1, k2, w)
			st.EdgesAdded++
		}
	}
}

// correlation returns the EC used for edge decisions, honouring the
// MinHashOnly switch.
func (a *AKG) correlation(k1, k2 dygraph.NodeID) float64 {
	if a.cfg.MinHashOnly {
		a.buildSketches([]dygraph.NodeID{k1, k2})
		if !minhash.SharesValue(a.sketches[k1], a.sketches[k2]) {
			return 0
		}
		return minhash.EstimateJaccard(a.sketches[k1], a.sketches[k2])
	}
	return a.Jaccard(k1, k2)
}

// buildSketches (re)computes window sketches for the given keywords from
// their id sets. Sketches cannot subtract expired users, so they are
// rebuilt per quantum for exactly the keywords that need screening — this
// mirrors the paper's per-quantum p-Min-Hash computation.
func (a *AKG) buildSketches(keys []dygraph.NodeID) {
	for _, k := range keys {
		sk, ok := a.sketches[k]
		if !ok {
			sk = minhash.New(a.cfg.P, a.cfg.Seed)
			a.sketches[k] = sk
		}
		sk.Reset()
		if set, ok := a.idsets[k]; ok {
			for u := range set.counts {
				sk.Add(u)
			}
		}
	}
}

func sortNodes(ns []dygraph.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
