package akg

import (
	"fmt"
	"testing"

	"repro/internal/ckg"
	"repro/internal/core"
	"repro/internal/dygraph"
)

// quantumOf builds a batch where each listed keyword is used by users
// [base, base+count) — enough control to steer burstiness and overlap.
func quantumOf(users map[uint64][]dygraph.NodeID) []ckg.UserKeywords {
	out := make([]ckg.UserKeywords, 0, len(users))
	for u := uint64(0); u < 1000; u++ {
		if kws, ok := users[u]; ok {
			out = append(out, ckg.UserKeywords{User: u, Keywords: kws})
		}
	}
	return out
}

// burstBatch makes keywords ks co-used by n distinct users.
func burstBatch(n int, ks ...dygraph.NodeID) []ckg.UserKeywords {
	users := make(map[uint64][]dygraph.NodeID, n)
	for u := 0; u < n; u++ {
		users[uint64(u)] = ks
	}
	return quantumOf(users)
}

func newTest(tau int, beta float64, w int) *AKG {
	return New(Config{Tau: tau, Beta: beta, Window: w}, core.Hooks{})
}

func TestDefaults(t *testing.T) {
	a := New(Config{}, core.Hooks{})
	cfg := a.Config()
	if cfg.Tau != 4 || cfg.Beta != 0.20 || cfg.Window != 30 || cfg.P < 2 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestBurstyKeywordEntersAKG(t *testing.T) {
	a := newTest(3, 0.2, 5)
	st := a.ProcessQuantum(burstBatch(4, 1, 2))
	if st.HighState != 2 || st.NodesAdded != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !a.InAKG(1) || !a.InAKG(2) {
		t.Fatalf("bursty keywords not admitted")
	}
	if a.Support(1) != 4 {
		t.Fatalf("support = %d, want 4", a.Support(1))
	}
}

func TestNonBurstyKeywordStaysOut(t *testing.T) {
	a := newTest(4, 0.2, 5)
	a.ProcessQuantum(burstBatch(3, 1))
	if a.InAKG(1) {
		t.Fatalf("keyword below τ admitted")
	}
	if a.Support(1) != 3 {
		t.Fatalf("id set should still track support: %d", a.Support(1))
	}
}

func TestEdgeFormsBetweenCorrelatedBurstyPair(t *testing.T) {
	a := newTest(3, 0.2, 5)
	a.ProcessQuantum(burstBatch(5, 1, 2))
	if !a.Engine().Graph().HasEdge(1, 2) {
		t.Fatalf("perfectly correlated bursty pair got no edge")
	}
	if w, _ := a.Engine().Graph().Weight(1, 2); w != 1.0 {
		t.Fatalf("identical id sets should give EC=1, got %v", w)
	}
}

func TestNoEdgeBelowBeta(t *testing.T) {
	a := newTest(3, 0.5, 5)
	// keyword 1 users 0-5; keyword 2 users 4-9: overlap 2/10 = 0.2 < 0.5.
	users := map[uint64][]dygraph.NodeID{}
	for u := 0; u < 6; u++ {
		users[uint64(u)] = append(users[uint64(u)], 1)
	}
	for u := 4; u < 10; u++ {
		users[uint64(u)] = append(users[uint64(u)], 2)
	}
	a.ProcessQuantum(quantumOf(users))
	if a.Engine().Graph().HasEdge(1, 2) {
		t.Fatalf("edge formed below correlation threshold")
	}
}

func TestJaccardExact(t *testing.T) {
	a := newTest(3, 0.1, 5)
	users := map[uint64][]dygraph.NodeID{}
	// kw1: users 0..5 (6 users), kw2: users 3..8 (6 users), overlap 3 → J = 3/9.
	for u := 0; u < 6; u++ {
		users[uint64(u)] = append(users[uint64(u)], 1)
	}
	for u := 3; u < 9; u++ {
		users[uint64(u)] = append(users[uint64(u)], 2)
	}
	a.ProcessQuantum(quantumOf(users))
	if got := a.Jaccard(1, 2); got < 0.33 || got > 0.34 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if a.Jaccard(1, 99) != 0 {
		t.Fatalf("Jaccard with unknown keyword should be 0")
	}
}

func TestClusterFormsFromCorrelatedTriple(t *testing.T) {
	a := newTest(3, 0.2, 5)
	a.ProcessQuantum(burstBatch(5, 1, 2, 3))
	eng := a.Engine()
	if eng.ClusterCount() != 1 {
		t.Fatalf("want 1 cluster, got %d", eng.ClusterCount())
	}
	c := eng.Clusters()[0]
	if c.NodeCount() != 3 {
		t.Fatalf("cluster nodes = %d", c.NodeCount())
	}
}

func TestStaleKeywordRemoved(t *testing.T) {
	a := newTest(3, 0.2, 3)
	a.ProcessQuantum(burstBatch(5, 1, 2))
	for q := 0; q < 3; q++ {
		a.ProcessQuantum(burstBatch(5, 7, 8)) // unrelated traffic
	}
	if a.InAKG(1) || a.InAKG(2) {
		t.Fatalf("stale keywords not removed after window slid past them")
	}
	if a.Support(1) != 0 {
		t.Fatalf("stale id set not cleared")
	}
}

func TestEdgeDropsWhenCorrelationDecays(t *testing.T) {
	a := newTest(3, 0.3, 3)
	a.ProcessQuantum(burstBatch(6, 1, 2))
	if !a.Engine().Graph().HasEdge(1, 2) {
		t.Fatalf("setup: no edge")
	}
	// Keep both keywords alive but used by disjoint user groups; the
	// window dilutes the overlap until EC < β.
	for q := 0; q < 3; q++ {
		users := map[uint64][]dygraph.NodeID{}
		for u := 100 + 20*q; u < 100+20*q+8; u++ {
			users[uint64(u)] = []dygraph.NodeID{1}
		}
		for u := 500 + 20*q; u < 500+20*q+8; u++ {
			users[uint64(u)] = []dygraph.NodeID{2}
		}
		a.ProcessQuantum(quantumOf(users))
	}
	if a.Engine().Graph().HasEdge(1, 2) {
		t.Fatalf("edge survived correlation decay")
	}
}

func TestIsolatedNonBurstyNodeLeavesAKG(t *testing.T) {
	a := newTest(4, 0.9, 5)
	// Bursty once, but correlation threshold so high no edges ever form.
	a.ProcessQuantum(burstBatch(5, 1))
	if !a.InAKG(1) {
		t.Fatalf("setup: keyword should be admitted")
	}
	// Next quantum it appears but below τ: observed member of set 2,
	// isolated, non-bursty → removed.
	a.ProcessQuantum(burstBatch(2, 1))
	if a.InAKG(1) {
		t.Fatalf("isolated non-bursty keyword stayed in AKG")
	}
}

func TestKeywordStaysWhileInCluster(t *testing.T) {
	a := newTest(3, 0.15, 10)
	a.ProcessQuantum(burstBatch(6, 1, 2, 3))
	if a.Engine().ClusterCount() != 1 {
		t.Fatalf("setup: cluster expected")
	}
	// Keywords keep appearing with only 2 users (below τ=3) but the same
	// user community, so correlation stays high: they must remain in the
	// AKG because their cluster persists.
	for q := 0; q < 4; q++ {
		a.ProcessQuantum(burstBatch(2, 1, 2, 3))
	}
	if !a.InAKG(1) || !a.InAKG(2) || !a.InAKG(3) {
		t.Fatalf("cluster members evicted while cluster alive")
	}
	if a.Engine().ClusterCount() != 1 {
		t.Fatalf("cluster dissolved unexpectedly")
	}
}

func TestUnionSupport(t *testing.T) {
	a := newTest(2, 0.2, 5)
	users := map[uint64][]dygraph.NodeID{
		1: {10, 11},
		2: {10},
		3: {11},
	}
	a.ProcessQuantum(quantumOf(users))
	if got := a.UnionSupport([]dygraph.NodeID{10, 11}); got != 3 {
		t.Fatalf("UnionSupport = %d, want 3", got)
	}
}

func TestMinHashOnlyMode(t *testing.T) {
	a := New(Config{Tau: 3, Beta: 0.2, Window: 5, MinHashOnly: true}, core.Hooks{})
	a.ProcessQuantum(burstBatch(6, 1, 2))
	// Identical id sets: sketches identical, must share values.
	if !a.Engine().Graph().HasEdge(1, 2) {
		t.Fatalf("MinHashOnly missed an identical-set pair")
	}
}

func TestNoMinHashScreenMode(t *testing.T) {
	a := New(Config{Tau: 3, Beta: 0.2, Window: 5, NoMinHashScreen: true}, core.Hooks{})
	st := a.ProcessQuantum(burstBatch(6, 1, 2))
	if st.PairsScreened != st.PairsPassed {
		t.Fatalf("screen should be disabled: %+v", st)
	}
	if !a.Engine().Graph().HasEdge(1, 2) {
		t.Fatalf("exact mode missed a correlated pair")
	}
}

func TestQuantumStatsAccounting(t *testing.T) {
	a := newTest(3, 0.2, 5)
	st := a.ProcessQuantum(burstBatch(5, 1, 2, 3))
	if st.Quantum != 1 || st.Keywords != 3 || st.HighState != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.EdgesAdded != 3 {
		t.Fatalf("expected 3 edges among a perfectly correlated triple, got %d", st.EdgesAdded)
	}
	if a.Quantum() != 1 {
		t.Fatalf("Quantum() = %d", a.Quantum())
	}
}

// TestManyQuantaStability drives a longer mixed workload and checks basic
// consistency invariants every quantum: AKG node count equals the engine
// graph, supports are non-negative, edge weights within [0,1].
func TestManyQuantaStability(t *testing.T) {
	a := newTest(3, 0.2, 4)
	for q := 0; q < 60; q++ {
		users := map[uint64][]dygraph.NodeID{}
		// A rotating cast of keyword communities.
		base := dygraph.NodeID(q % 7)
		for u := 0; u < 5; u++ {
			users[uint64(10*q+u)] = []dygraph.NodeID{base, base + 1, base + 2}
		}
		for u := 0; u < 3; u++ {
			users[uint64(500+u)] = []dygraph.NodeID{50}
		}
		a.ProcessQuantum(quantumOf(users))

		if a.NodeCount() != a.Engine().Graph().NodeCount() {
			t.Fatalf("q%d: present map (%d) and engine graph (%d) disagree",
				q, a.NodeCount(), a.Engine().Graph().NodeCount())
		}
		bad := false
		a.Engine().Graph().ForEachEdge(func(e dygraph.Edge, w float64) {
			if w < 0 || w > 1 {
				bad = true
			}
		})
		if bad {
			t.Fatalf("q%d: edge weight outside [0,1]", q)
		}
	}
}

func TestProcessQuantumDeterminism(t *testing.T) {
	run := func() string {
		a := newTest(3, 0.2, 4)
		for q := 0; q < 20; q++ {
			a.ProcessQuantum(burstBatch(4+q%3, dygraph.NodeID(q%5), dygraph.NodeID(q%5+1)))
		}
		out := ""
		for _, c := range a.Engine().Clusters() {
			out += fmt.Sprint(c.Nodes())
		}
		return fmt.Sprintf("%d/%d/%s", a.NodeCount(), a.EdgeCount(), out)
	}
	if run() != run() {
		t.Fatalf("identical inputs produced different AKGs")
	}
}

func TestUserJaccard(t *testing.T) {
	a := newTest(2, 0.2, 5)
	users := map[uint64][]dygraph.NodeID{
		1: {10}, 2: {10}, 3: {10},
		4: {20}, 5: {20},
		6: {10, 20},
	}
	a.ProcessQuantum(quantumOf(users))
	// users(10) = {1,2,3,6}, users(20) = {4,5,6}: inter 1, union 6.
	got := a.UserJaccard([]dygraph.NodeID{10}, []dygraph.NodeID{20})
	if got < 1.0/6-1e-9 || got > 1.0/6+1e-9 {
		t.Fatalf("UserJaccard = %v, want 1/6", got)
	}
	if a.UserJaccard([]dygraph.NodeID{10}, []dygraph.NodeID{99}) != 0 {
		t.Fatalf("unknown keyword should give 0")
	}
	if a.UserJaccard([]dygraph.NodeID{10}, []dygraph.NodeID{10}) != 1 {
		t.Fatalf("self overlap should be 1")
	}
}

func TestAKGStateRoundTrip(t *testing.T) {
	a := newTest(3, 0.2, 4)
	for q := 0; q < 10; q++ {
		a.ProcessQuantum(burstBatch(4+q%2, dygraph.NodeID(q%4), dygraph.NodeID(q%4+1), dygraph.NodeID(q%4+2)))
	}
	st := a.State()
	b, err := FromState(st, core.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Quantum() != a.Quantum() || b.NodeCount() != a.NodeCount() || b.EdgeCount() != a.EdgeCount() {
		t.Fatalf("counts differ after restore")
	}
	if !core.SameClustering(a.Engine().Snapshot(), b.Engine().Snapshot()) {
		t.Fatalf("clustering differs after restore")
	}
	// Both must evolve identically afterwards.
	for q := 0; q < 6; q++ {
		sa := a.ProcessQuantum(burstBatch(5, dygraph.NodeID(q%3), dygraph.NodeID(q%3+1)))
		sb := b.ProcessQuantum(burstBatch(5, dygraph.NodeID(q%3), dygraph.NodeID(q%3+1)))
		if sa != sb {
			t.Fatalf("post-restore stats diverge: %+v vs %+v", sa, sb)
		}
		if !core.SameClustering(a.Engine().Snapshot(), b.Engine().Snapshot()) {
			t.Fatalf("post-restore clustering diverges at %d", q)
		}
	}
}

func TestAKGStateValidation(t *testing.T) {
	a := newTest(3, 0.2, 4)
	a.ProcessQuantum(burstBatch(5, 1, 2, 3))
	good := a.State()

	bad := good
	bad.Ring = append(bad.Ring, bad.Ring...)
	bad.Ring = append(bad.Ring, bad.Ring...)
	bad.Ring = append(bad.Ring, bad.Ring...)
	if _, err := FromState(bad, core.Hooks{}); err == nil {
		t.Fatalf("oversized ring accepted")
	}

	bad = good
	bad.Present = append([]dygraph.NodeID{}, 999)
	if _, err := FromState(bad, core.Hooks{}); err == nil {
		t.Fatalf("phantom present keyword accepted")
	}
}
