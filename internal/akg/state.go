package akg

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dygraph"
)

// QuantumObs is the serialisable observation record of one quantum:
// keyword -> distinct users who used it. Slices are sorted for stable
// snapshots.
type QuantumObs struct {
	Keywords []dygraph.NodeID
	Users    [][]uint64 // parallel to Keywords
}

// State is a serialisable snapshot of the AKG layer. The per-keyword id
// sets are not stored: they are exactly the column sums of the window
// ring and are rebuilt on restore.
type State struct {
	Cfg     Config
	Quantum int
	Ring    []QuantumObs
	Engine  core.EngineState
	Present []dygraph.NodeID
}

// State captures the layer.
func (a *AKG) State() State {
	s := State{
		Cfg:     a.cfg,
		Quantum: a.quantum,
		Engine:  a.eng.State(),
	}
	for _, obs := range a.ring {
		// The runtime ring is already keyword-ascending with users
		// ascending per keyword — exactly the snapshot shape.
		q := QuantumObs{Keywords: append([]dygraph.NodeID(nil), obs.keys...)}
		for i := range obs.keys {
			q.Users = append(q.Users, append([]uint64(nil), obs.usersOf(i)...))
		}
		s.Ring = append(s.Ring, q)
	}
	for k := range a.present {
		s.Present = append(s.Present, k)
	}
	sort.Slice(s.Present, func(i, j int) bool { return s.Present[i] < s.Present[j] })
	return s
}

// FromState reconstructs the layer (id sets rebuilt from the ring) and
// re-attaches lifecycle hooks to the restored engine.
func FromState(s State, hooks core.Hooks) (*AKG, error) {
	if len(s.Ring) > s.Cfg.withDefaults().Window {
		return nil, fmt.Errorf("akg: ring holds %d quanta, window is %d", len(s.Ring), s.Cfg.withDefaults().Window)
	}
	eng, err := core.EngineFromState(s.Engine, hooks)
	if err != nil {
		return nil, err
	}
	a := New(s.Cfg, hooks)
	a.eng = eng
	a.quantum = s.Quantum
	for _, q := range s.Ring {
		if len(q.Keywords) != len(q.Users) {
			return nil, fmt.Errorf("akg: ring entry has %d keywords, %d user lists", len(q.Keywords), len(q.Users))
		}
		total := 0
		for _, users := range q.Users {
			total += len(users)
		}
		obs := quantumObs{
			keys:  append([]dygraph.NodeID(nil), q.Keywords...),
			off:   make([]int32, 1, len(q.Keywords)+1),
			users: make([]uint64, 0, total),
		}
		for i, k := range q.Keywords {
			obs.users = append(obs.users, q.Users[i]...)
			obs.off = append(obs.off, int32(len(obs.users)))
			set, ok := a.idsets[k]
			if !ok {
				set = &idSet{counts: make(map[uint64]int, len(q.Users[i]))}
				a.idsets[k] = set
			}
			for _, u := range q.Users[i] {
				set.counts[u]++
			}
		}
		a.ring = append(a.ring, obs)
	}
	for _, k := range s.Present {
		if !a.eng.Graph().HasNode(k) {
			return nil, fmt.Errorf("akg: present keyword %d missing from engine graph", k)
		}
		a.present[k] = true
	}
	if a.eng.Graph().NodeCount() != len(a.present) {
		return nil, fmt.Errorf("akg: engine graph has %d nodes but %d present keywords",
			a.eng.Graph().NodeCount(), len(a.present))
	}
	return a, nil
}
