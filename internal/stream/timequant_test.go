package stream

import "testing"

func tmsg(id uint64, tm int64) Message {
	return Message{ID: id, User: id, Time: tm, Text: "x"}
}

func TestTimeQuantizerGrouping(t *testing.T) {
	q := NewTimeQuantizer(10)
	if q.Duration() != 10 {
		t.Fatalf("Duration = %d", q.Duration())
	}
	// First message anchors the grid at t=5: quantum [5,15).
	if got := q.Add(tmsg(1, 5)); len(got) != 0 {
		t.Fatalf("first message closed a quantum: %v", got)
	}
	if got := q.Add(tmsg(2, 14)); len(got) != 0 {
		t.Fatalf("in-quantum message closed a quantum")
	}
	// t=15 crosses the boundary: one completed quantum with 2 messages.
	got := q.Add(tmsg(3, 15))
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("boundary crossing wrong: %v", got)
	}
	// Flush drains the open quantum.
	if rest := q.Flush(); len(rest) != 1 || rest[0].ID != 3 {
		t.Fatalf("Flush = %v", rest)
	}
}

func TestTimeQuantizerGapsEmitEmptyQuanta(t *testing.T) {
	q := NewTimeQuantizer(10)
	q.Add(tmsg(1, 0)) // quantum [0,10)
	// Jump to t=35: closes [0,10) (1 msg), [10,20) (empty), [20,30) (empty).
	got := q.Add(tmsg(2, 35))
	if len(got) != 3 {
		t.Fatalf("gap emitted %d quanta, want 3", len(got))
	}
	if len(got[0]) != 1 || len(got[1]) != 0 || len(got[2]) != 0 {
		t.Fatalf("quantum contents wrong: %v", got)
	}
}

func TestTimeQuantizerLateArrivalTolerated(t *testing.T) {
	q := NewTimeQuantizer(10)
	q.Add(tmsg(1, 20))
	if got := q.Add(tmsg(2, 12)); len(got) != 0 {
		t.Fatalf("late arrival closed a quantum")
	}
	if len(q.Buffered()) != 2 {
		t.Fatalf("late arrival lost")
	}
}

func TestTimeQuantizerResume(t *testing.T) {
	q := NewTimeQuantizer(10)
	q.Add(tmsg(1, 7))
	start, started := q.Pos()
	if !started || start != 7 {
		t.Fatalf("Pos = %d,%v", start, started)
	}
	q2 := NewTimeQuantizer(10)
	q2.Resume(start, started)
	// Same boundary behaviour as the original.
	if got := q2.Add(tmsg(2, 16)); len(got) != 0 {
		t.Fatalf("resumed grid misaligned: %v", got)
	}
	if got := q2.Add(tmsg(3, 17)); len(got) != 1 {
		t.Fatalf("resumed grid boundary missing: %v", got)
	}
}

func TestTimeQuantizerClampsDuration(t *testing.T) {
	if NewTimeQuantizer(0).Duration() != 1 {
		t.Fatalf("duration not clamped")
	}
}
