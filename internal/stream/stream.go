// Package stream defines the microblog message model and trace IO used by
// the detector, the workload generator and the experiment harness.
//
// A trace is a chronologically ordered sequence of messages. The detector
// consumes messages in arrival order and cuts them into quanta of Δ
// messages (the paper defines quantum size in messages for its
// experiments, Section 7.1); a sliding window of w quanta induces the
// keyword graph.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Message is one microblog post.
type Message struct {
	ID   uint64 `json:"id"`
	User uint64 `json:"user"`
	// Time is an abstract, monotonically non-decreasing timestamp (the
	// generator uses message sequence numbers; real traces may carry unix
	// milliseconds). The detector only requires ordering.
	Time int64  `json:"time"`
	Text string `json:"text"`
}

// Source yields messages in arrival order.
type Source interface {
	// Next returns the next message. ok is false at end of stream.
	Next() (msg Message, ok bool, err error)
}

// SliceSource serves messages from memory.
type SliceSource struct {
	msgs []Message
	pos  int
}

// NewSliceSource returns a Source over msgs.
func NewSliceSource(msgs []Message) *SliceSource { return &SliceSource{msgs: msgs} }

// Next implements Source.
func (s *SliceSource) Next() (Message, bool, error) {
	if s.pos >= len(s.msgs) {
		return Message{}, false, nil
	}
	m := s.msgs[s.pos]
	s.pos++
	return m, true, nil
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of messages.
func (s *SliceSource) Len() int { return len(s.msgs) }

// JSONLReader reads one JSON-encoded Message per line. Malformed lines
// produce an error identifying the line number; empty lines are skipped
// (failure-injection tests rely on both behaviours).
type JSONLReader struct {
	sc   *bufio.Scanner
	line int
}

// NewJSONLReader returns a Source reading from r.
func NewJSONLReader(r io.Reader) *JSONLReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &JSONLReader{sc: sc}
}

// Next implements Source.
func (jr *JSONLReader) Next() (Message, bool, error) {
	for jr.sc.Scan() {
		jr.line++
		raw := jr.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var m Message
		if err := json.Unmarshal(raw, &m); err != nil {
			return Message{}, false, fmt.Errorf("stream: line %d: %w", jr.line, err)
		}
		return m, true, nil
	}
	if err := jr.sc.Err(); err != nil {
		return Message{}, false, fmt.Errorf("stream: read: %w", err)
	}
	return Message{}, false, nil
}

// WriteJSONL writes msgs to w, one JSON object per line.
func WriteJSONL(w io.Writer, msgs []Message) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			return fmt.Errorf("stream: write message %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadAll drains a source into a slice.
func ReadAll(src Source) ([]Message, error) {
	var out []Message
	for {
		m, ok, err := src.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, m)
	}
}

// Quantizer cuts a message stream into fixed-size quanta of delta
// messages, the unit at which the AKG is updated.
type Quantizer struct {
	delta int
	buf   []Message
}

// NewQuantizer returns a Quantizer emitting batches of delta messages.
// delta must be positive.
func NewQuantizer(delta int) *Quantizer {
	if delta < 1 {
		delta = 1
	}
	return &Quantizer{delta: delta, buf: make([]Message, 0, delta)}
}

// Delta returns the quantum size.
func (q *Quantizer) Delta() int { return q.delta }

// Add buffers a message and returns a completed quantum when the buffer
// reaches delta messages, or nil. The returned slice is reused after the
// next call; consumers must finish with it before adding more.
func (q *Quantizer) Add(m Message) []Message {
	q.buf = append(q.buf, m)
	if len(q.buf) < q.delta {
		return nil
	}
	out := q.buf
	q.buf = q.buf[:0]
	return out
}

// Flush returns any buffered partial quantum (possibly empty) and clears
// the buffer. Used at end of stream.
func (q *Quantizer) Flush() []Message {
	out := q.buf
	q.buf = q.buf[:0]
	return out
}

// Buffered returns a copy of the messages accumulated toward the next
// quantum, without consuming them (used by detector checkpoints).
func (q *Quantizer) Buffered() []Message {
	out := make([]Message, len(q.buf))
	copy(out, q.buf)
	return out
}
