package stream

import (
	"strings"
	"testing"
)

// FuzzJSONLReader: arbitrary bytes never panic the reader; it either
// yields messages or a line-tagged error.
func FuzzJSONLReader(f *testing.F) {
	f.Add("")
	f.Add(`{"id":1,"user":2,"time":3,"text":"a"}`)
	f.Add("{\"id\":1}\n\nnot json\n")
	f.Add("\x00\xff{}[]")
	f.Fuzz(func(t *testing.T, data string) {
		r := NewJSONLReader(strings.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, ok, err := r.Next()
			if err != nil || !ok {
				return
			}
		}
	})
}
