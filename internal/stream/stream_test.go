package stream

import (
	"bytes"
	"strings"
	"testing"
)

func sample(n int) []Message {
	out := make([]Message, n)
	for i := range out {
		out[i] = Message{ID: uint64(i + 1), User: uint64(i % 7), Time: int64(i), Text: "hello world"}
	}
	return out
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource(sample(3))
	if src.Len() != 3 {
		t.Fatalf("Len = %d", src.Len())
	}
	for i := 1; i <= 3; i++ {
		m, ok, err := src.Next()
		if err != nil || !ok || m.ID != uint64(i) {
			t.Fatalf("Next %d = %v,%v,%v", i, m, ok, err)
		}
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatalf("source did not end")
	}
	src.Reset()
	if m, ok, _ := src.Next(); !ok || m.ID != 1 {
		t.Fatalf("Reset failed")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	msgs := sample(5)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewJSONLReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("round trip lost messages: %d vs %d", len(got), len(msgs))
	}
	for i := range msgs {
		if got[i] != msgs[i] {
			t.Fatalf("message %d mismatch: %+v vs %+v", i, got[i], msgs[i])
		}
	}
}

func TestJSONLSkipsEmptyLines(t *testing.T) {
	in := `{"id":1,"user":2,"time":3,"text":"a b"}

{"id":2,"user":2,"time":4,"text":"c"}
`
	got, err := ReadAll(NewJSONLReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d messages", len(got))
	}
}

func TestJSONLMalformedLineError(t *testing.T) {
	in := "{\"id\":1,\"text\":\"ok\"}\nnot json at all\n"
	r := NewJSONLReader(strings.NewReader(in))
	if _, ok, err := r.Next(); err != nil || !ok {
		t.Fatalf("first line should parse")
	}
	_, _, err := r.Next()
	if err == nil {
		t.Fatalf("malformed line did not error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should identify line: %v", err)
	}
}

func TestQuantizer(t *testing.T) {
	q := NewQuantizer(3)
	if q.Delta() != 3 {
		t.Fatalf("Delta = %d", q.Delta())
	}
	msgs := sample(7)
	var quanta [][]Message
	for _, m := range msgs {
		if batch := q.Add(m); batch != nil {
			cp := make([]Message, len(batch))
			copy(cp, batch)
			quanta = append(quanta, cp)
		}
	}
	if len(quanta) != 2 {
		t.Fatalf("expected 2 full quanta, got %d", len(quanta))
	}
	for _, qu := range quanta {
		if len(qu) != 3 {
			t.Fatalf("quantum size %d", len(qu))
		}
	}
	rest := q.Flush()
	if len(rest) != 1 || rest[0].ID != 7 {
		t.Fatalf("Flush = %v", rest)
	}
	if len(q.Flush()) != 0 {
		t.Fatalf("second Flush not empty")
	}
}

func TestQuantizerClampsDelta(t *testing.T) {
	q := NewQuantizer(0)
	if q.Delta() != 1 {
		t.Fatalf("Delta = %d", q.Delta())
	}
	if batch := q.Add(Message{ID: 1}); len(batch) != 1 {
		t.Fatalf("delta-1 quantizer should emit immediately")
	}
}
