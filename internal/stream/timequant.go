package stream

// TimeQuantizer cuts a stream into quanta of fixed duration in Message.Time
// units — the paper's original definition of the quantum ("unit time σ",
// Section 1.1); the experiments' message-count quanta are provided by
// Quantizer. Gaps in the stream yield empty quanta, which matter: the
// sliding window must keep moving (and expiring keywords) through silence.
type TimeQuantizer struct {
	duration int64
	start    int64 // inclusive lower bound of the current quantum
	started  bool
	buf      []Message
}

// NewTimeQuantizer returns a quantizer with the given quantum duration
// (clamped to ≥ 1). The first message anchors the quantum grid.
func NewTimeQuantizer(duration int64) *TimeQuantizer {
	if duration < 1 {
		duration = 1
	}
	return &TimeQuantizer{duration: duration}
}

// Duration returns the quantum length in time units.
func (q *TimeQuantizer) Duration() int64 { return q.duration }

// Add buffers a message and returns every quantum completed by its
// arrival: zero batches while the quantum is still open, one when the
// message crosses a boundary, several (the middle ones empty) when the
// message lands past a gap. Messages with timestamps before the current
// quantum are treated as belonging to it (late arrivals are tolerated
// rather than dropped).
func (q *TimeQuantizer) Add(m Message) [][]Message {
	if !q.started {
		q.started = true
		q.start = m.Time
	}
	var out [][]Message
	for m.Time >= q.start+q.duration {
		done := q.buf
		q.buf = nil
		out = append(out, done) // may be nil: an empty quantum
		q.start += q.duration
	}
	q.buf = append(q.buf, m)
	return out
}

// Flush returns the open partial quantum and clears it.
func (q *TimeQuantizer) Flush() []Message {
	out := q.buf
	q.buf = nil
	return out
}

// Buffered returns a copy of the open quantum's messages (checkpointing).
func (q *TimeQuantizer) Buffered() []Message {
	out := make([]Message, len(q.buf))
	copy(out, q.buf)
	return out
}

// Pos reports the quantum grid position (checkpointing).
func (q *TimeQuantizer) Pos() (start int64, started bool) {
	return q.start, q.started
}

// Resume restores a grid position captured with Pos.
func (q *TimeQuantizer) Resume(start int64, started bool) {
	q.start = start
	q.started = started
}
